"""Name → backend registry so index backends are selectable from config.

Mirrors :mod:`repro.models.registry`: backends self-register with the
:func:`register_index` decorator, and consumers (the serving layer, the
benchmark harness, user config files) construct them by name through
:func:`build_index` without importing backend modules directly::

    from repro.index import build_index

    index = build_index("ivf", metric="dot", nprobe=16)
    service = RecommendationService(model, graph, index=index)

``RecommendationService`` also accepts the bare name (``index="ivf"``) and
resolves it through this registry with default parameters.

The registry is also the snapshot layer's reconstruction seam: every
backend's :meth:`~repro.index.base.ItemIndex.config` returns the JSON-able
constructor kwargs that reproduce it, a snapshot manifest stores
``(name, config)``, and :meth:`~repro.index.base.ItemIndex.load` round-trips
through ``build_index(name, **config)`` — so an index loaded in another
process is configured identically to the one that was saved.
"""

from __future__ import annotations

from typing import Callable, Type

from repro.index.base import ItemIndex

__all__ = ["INDEX_REGISTRY", "build_index", "list_index_names", "register_index"]

#: Registered backends; values are classes (or zero-config factories).
INDEX_REGISTRY: dict[str, Callable[..., ItemIndex]] = {}


def register_index(name: str) -> Callable[[Type[ItemIndex]], Type[ItemIndex]]:
    """Class decorator registering an :class:`ItemIndex` backend under ``name``.

    A duplicate name raises :class:`ValueError` rather than silently
    shadowing an existing backend; the class is returned unchanged.
    """
    if not isinstance(name, str) or not name.strip():
        raise ValueError(f"index name must be a non-empty string, got {name!r}")

    def decorator(cls: Type[ItemIndex]) -> Type[ItemIndex]:
        if name in INDEX_REGISTRY:
            raise ValueError(
                f"index backend {name!r} is already registered; "
                "remove it from INDEX_REGISTRY first to replace it"
            )
        INDEX_REGISTRY[name] = cls
        return cls

    return decorator


def build_index(name: str, **kwargs: object) -> ItemIndex:
    """Construct a registered backend by name, passing ``kwargs`` through."""
    try:
        factory = INDEX_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown index backend {name!r}; registered: {list_index_names()}"
        ) from None
    return factory(**kwargs)


def list_index_names() -> list[str]:
    """Registered backend names, sorted for stable display."""
    return sorted(INDEX_REGISTRY)
