"""Brute-force retrieval: the correctness oracle of the index family.

:class:`ExactIndex` scores every query against the whole catalogue with one
matmul and selects top-K with the library's deterministic tie-break.  It is
the reference the approximate backends are measured against
(:func:`repro.index.recall.recall_at_k`), and — wired into the serving layer
— reproduces the full-catalogue ranking path byte for byte while speaking
the same ``search`` interface as IVF/LSH.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import ItemIndex
from repro.index.registry import register_index
from repro.index.topk import PAD_ID, PAD_SCORE, dense_top_k

__all__ = ["ExactIndex"]


@register_index("exact")
class ExactIndex(ItemIndex):
    """Exhaustive dot/cosine scan over the catalogue; exact by construction."""

    name = "exact"

    def _search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        scores = queries @ self._vectors.T
        top = dense_top_k(scores, k)
        top_scores = np.take_along_axis(scores, top, axis=1)
        if top.shape[1] == k:
            return top, top_scores
        ids = np.full((queries.shape[0], k), PAD_ID, dtype=np.int64)
        padded_scores = np.full((queries.shape[0], k), PAD_SCORE, dtype=np.float64)
        ids[:, : top.shape[1]] = top
        padded_scores[:, : top.shape[1]] = top_scores
        return ids, padded_scores
