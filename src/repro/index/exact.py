"""Brute-force retrieval: the correctness oracle of the index family.

:class:`ExactIndex` scores every query against the whole catalogue with one
matmul and selects top-K with the library's deterministic tie-break.  It is
the reference the approximate backends are measured against
(:func:`repro.index.recall.recall_at_k`), and — wired into the serving layer
— reproduces the full-catalogue ranking path byte for byte while speaking
the same ``search`` interface as IVF/LSH.

Online maintenance keeps the scan proportional to the *live* catalogue: item
vectors live in a compact dense block, an update overwrites its row in
place, and a delete swaps the victim row with the last live row and shrinks
the block (the classic O(1) row-swap delete).  Row order therefore diverges
from id order after churn, so the mutated search path carries an explicit
row → id map and selects through :func:`~repro.index.topk.padded_top_k`,
which keys ties on the item id — rankings stay identical to a fresh build.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import ItemIndex
from repro.index.registry import register_index
from repro.index.topk import PAD_ID, PAD_SCORE, dense_top_k, padded_top_k

__all__ = ["ExactIndex"]


@register_index("exact")
class ExactIndex(ItemIndex):
    """Exhaustive dot/cosine scan over the live catalogue; exact by construction."""

    name = "exact"

    def _build(self) -> None:
        live = np.flatnonzero(self._active)
        self._count = int(live.size)
        self._dense = self._vectors[live]
        self._dense_ids = live.astype(np.int64, copy=True)
        self._id_to_row = np.full(self._vectors.shape[0], -1, dtype=np.int64)
        self._id_to_row[live] = np.arange(live.size)
        # Fast path: after a clean build row r holds item r, so column indices
        # from dense_top_k ARE item ids.  Any structural mutation clears it.
        self._columns_are_ids = live.size == self._vectors.shape[0]

    # ------------------------------------------------------------------ #
    # Persistence: the compact block is saved trimmed to its live count —
    # spare reserve capacity is an in-memory amortization detail, not
    # state — and the id→row inverse is recomputed from the row→id map.
    # ------------------------------------------------------------------ #
    def _snapshot_arrays(self) -> dict[str, np.ndarray]:
        return {
            "exact_dense": self._dense[: self._count],
            "exact_dense_ids": self._dense_ids[: self._count],
        }

    def _snapshot_state(self) -> dict:
        return {"columns_are_ids": bool(self._columns_are_ids)}

    def _restore(self, arrays: dict[str, np.ndarray], state: dict) -> None:
        self._dense = arrays["exact_dense"]
        self._dense_ids = arrays["exact_dense_ids"]
        self._count = int(self._dense.shape[0])
        self._id_to_row = np.full(self._vectors.shape[0], -1, dtype=np.int64)
        self._id_to_row[self._dense_ids] = np.arange(self._count)
        self._columns_are_ids = bool(state["columns_are_ids"])

    def _promote(self) -> None:
        # The dense block and its row→id map are overwritten in place by
        # upserts and row-swap deletes; the id→row inverse is already a
        # private in-memory array.
        self._dense = np.array(self._dense)
        self._dense_ids = np.array(self._dense_ids)

    # ------------------------------------------------------------------ #
    def _apply_growth(self, new_size: int) -> None:
        grown = np.full(new_size, -1, dtype=np.int64)
        grown[: self._id_to_row.size] = self._id_to_row
        self._id_to_row = grown

    def _apply_upsert(self, item_ids: np.ndarray, rows: np.ndarray, was_active: np.ndarray) -> None:
        existing = item_ids[was_active]
        if existing.size:
            self._dense[self._id_to_row[existing]] = rows[was_active]
        added = item_ids[~was_active]
        if added.size:
            self._reserve(self._count + added.size)
            block = slice(self._count, self._count + added.size)
            self._dense[block] = rows[~was_active]
            self._dense_ids[block] = added
            self._id_to_row[added] = np.arange(self._count, self._count + added.size)
            self._count += int(added.size)
            self._columns_are_ids = False

    def _apply_delete(self, item_ids: np.ndarray) -> None:
        for item in item_ids:
            row = int(self._id_to_row[item])
            last = self._count - 1
            last_id = int(self._dense_ids[last])
            self._dense[row] = self._dense[last]
            self._dense_ids[row] = last_id
            self._id_to_row[last_id] = row
            self._id_to_row[item] = -1
            self._count = last
        self._columns_are_ids = False

    def _reserve(self, rows_needed: int) -> None:
        """Grow the dense block geometrically so appends stay amortized O(1)."""
        capacity = self._dense.shape[0]
        if rows_needed <= capacity:
            return
        capacity = max(2 * capacity, rows_needed)
        dense = np.zeros((capacity, self._dense.shape[1]), dtype=self._dense.dtype)
        dense[: self._count] = self._dense[: self._count]
        self._dense = dense
        ids = np.full(capacity, -1, dtype=np.int64)
        ids[: self._count] = self._dense_ids[: self._count]
        self._dense_ids = ids

    def _search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        scores = queries @ self._dense[: self._count].T
        if not self._columns_are_ids:
            ids = np.broadcast_to(self._dense_ids[: self._count], scores.shape)
            return padded_top_k(ids, scores, k)
        top = dense_top_k(scores, k)
        top_scores = np.take_along_axis(scores, top, axis=1)
        if top.shape[1] == k:
            return top, top_scores
        ids = np.full((queries.shape[0], k), PAD_ID, dtype=np.int64)
        padded_scores = np.full((queries.shape[0], k), PAD_SCORE, dtype=np.float64)
        ids[:, : top.shape[1]] = top
        padded_scores[:, : top.shape[1]] = top_scores
        return ids, padded_scores
