"""The common interface of the candidate-retrieval index backends.

An :class:`ItemIndex` is built once from the catalogue's item representations
(a plain ``(num_items, d)`` matrix, or a serving-layer
:class:`~repro.models.base.FactorizedRepresentations` whose item side it
takes) and then answers batched ``search(queries, k)`` calls with the ids and
scores of each query's best items.  Two metrics are supported:

* ``"dot"`` — the raw inner product ``q · x (+ b_x)``, the score every
  factorized recommender in the library ranks by.  Optional additive item
  biases are folded in by augmenting the item vectors with a bias coordinate
  and the queries with a constant ``1``, so *every* backend handles them
  uniformly.
* ``"cosine"`` — the angle between query and item; item and query vectors
  are normalized once, zero vectors score ``0`` against everything.  Biases
  have no cosine interpretation and are rejected.

The contract shared by all backends: ``search`` returns ``(ids, scores)``
matrices of shape ``(num_queries, k)``, best first, score ties broken by
ascending item id, padded with ``-1`` ids / ``-inf`` scores when a query has
fewer than ``k`` reachable items.  :class:`~repro.index.exact.ExactIndex`
reaches the whole catalogue and is the correctness oracle the approximate
backends are measured against (:func:`repro.index.recall.recall_at_k`).

Besides the build-once lifecycle, an index absorbs catalogue churn online:
:meth:`ItemIndex.upsert` replaces the vectors of existing items (or appends
new ids that extend the id space contiguously) and :meth:`ItemIndex.delete`
retires items so they are never returned again — both without a full
rebuild.  The base class owns the shared bookkeeping (validation, bias
folding, cosine normalization, the live-item mask); backends implement the
structural edits in ``_apply_upsert`` / ``_apply_delete``.  Structural
maintenance a backend *defers* off the mutation path (e.g. the IVF drift
re-cluster) runs at the next explicit :meth:`ItemIndex.maintain` call.

Storage precision is a knob: ``dtype`` pins the working dtype of the stored
vectors and every search matmul to ``float32`` (the serving default — halves
the memory traffic of the scan) or ``float64``; when omitted, the build
input's precision is inherited (float32 stays float32, everything else is
snapshotted at float64).  Returned *scores* are always float64 — top-k
selection widens once so tie-breaking is identical across storage dtypes.

Built indexes persist without retraining: :meth:`ItemIndex.save` writes the
shared state (vectors, live mask, config) plus whatever the backend adds
through its ``_snapshot_*`` hooks into one crash-safe array bundle
(:func:`repro.utils.serialization.write_bundle`), and
:meth:`ItemIndex.load` reconstructs an equivalent index — via the registry,
from the manifest's ``config()`` — with **no** k-means/LSH/PQ training.
With ``mmap=True`` (the default) the payloads are memory-mapped read-only,
so attaching to a snapshot is O(1) regardless of catalogue size; the first
mutating call (``upsert``/``delete``/structural ``maintain``) promotes the
mapped arrays to private in-memory copies (copy-on-write), so a snapshot
on disk is never written through, and read-only serving workers never pay
the copy at all.
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter

import numpy as np

from repro.index.topk import PAD_ID, PAD_SCORE
from repro.models.base import FactorizedRepresentations
from repro.obs import NULL_OBS
from repro.reliability.failpoints import hit as _failpoint
from repro.utils.serialization import BundleError, dtype_from_name, read_bundle, write_bundle

__all__ = ["ItemIndex", "METRICS", "SNAPSHOT_KIND"]

#: Manifest tag distinguishing index snapshots from other array bundles.
SNAPSHOT_KIND = "item-index-snapshot"

#: Similarity metrics every backend must support.
METRICS = ("dot", "cosine")

#: Working dtypes an index may store vectors in.
_WORK_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


class ItemIndex:
    """Base class of the candidate-retrieval backends.

    Subclasses implement :meth:`_build` (construct internal structures from
    the prepared ``vectors`` matrix) and :meth:`_search` (answer prepared
    queries); metric handling, bias augmentation, validation and the
    build/rebuild lifecycle live here.
    """

    #: registry name; subclasses override (see :mod:`repro.index.registry`)
    name: str = "item-index"

    def __init__(self, metric: str = "dot", dtype: "str | np.dtype | None" = None) -> None:
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; choose from {METRICS}")
        if dtype is not None:
            dtype = np.dtype(dtype)
            if dtype not in _WORK_DTYPES:
                raise ValueError(f"dtype must be float32 or float64, got {dtype}")
        self.metric = metric
        self.dtype = dtype
        self._vectors: np.ndarray | None = None
        self._active: np.ndarray | None = None  # live-item mask over the id space
        self._has_bias = False
        self._readonly = False  # snapshot-mapped arrays pending copy-on-write
        self.bind_obs(NULL_OBS)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def bind_obs(self, obs) -> None:
        """Attach an :class:`~repro.obs.Observability` bundle to this index.

        Registers the index's metric series — labelled by backend name —
        in the bundle's registry and starts recording into them: search /
        upsert / delete / maintain durations, query rows answered, plus
        whatever the backend adds through :meth:`_bind_backend_metrics`
        (IVF probe and scan counters, PQ ADC table builds).  Binding the
        shared :data:`~repro.obs.NULL_OBS` (the constructor default)
        disables recording; instrumented call sites check
        ``self._obs.enabled`` before reading any clock.
        """
        self._obs = obs
        registry = obs.registry
        labels = {"backend": self.name}
        self._met_search_seconds = registry.histogram(
            "repro_index_search_seconds", "Seconds per ItemIndex.search call.", labels=labels
        )
        self._met_queries = registry.counter(
            "repro_index_queries_total", "Query rows answered by ItemIndex.search.", labels=labels
        )
        self._met_upsert_seconds = registry.histogram(
            "repro_index_upsert_seconds", "Seconds per ItemIndex.upsert call.", labels=labels
        )
        self._met_delete_seconds = registry.histogram(
            "repro_index_delete_seconds", "Seconds per ItemIndex.delete call.", labels=labels
        )
        self._met_maintain_seconds = registry.histogram(
            "repro_index_maintain_seconds",
            "Seconds per ItemIndex.maintain call that ran structural work.",
            labels=labels,
        )
        self._met_maintain_runs = registry.counter(
            "repro_index_maintain_runs_total",
            "ItemIndex.maintain calls that ran structural work.",
            labels=labels,
        )
        self._bind_backend_metrics(registry, labels)

    def _bind_backend_metrics(self, registry, labels: "dict[str, str]") -> None:
        """Hook: backends register their own series on the bound registry."""

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has been called."""
        return self._vectors is not None

    @property
    def num_items(self) -> int:
        """Size of the id space ``[0, num_items)`` (0 before any build).

        Grows with appending :meth:`upsert` calls; :meth:`delete` does *not*
        shrink it — deleted ids stay reserved (see :attr:`num_active`).
        """
        return 0 if self._vectors is None else int(self._vectors.shape[0])

    @property
    def num_active(self) -> int:
        """Number of live (searchable) items: built or upserted, not deleted."""
        return 0 if self._active is None else int(self._active.sum())

    @property
    def work_dtype(self) -> np.dtype | None:
        """The dtype vectors are stored (and matmuls run) in; None before build."""
        return None if self._vectors is None else self._vectors.dtype

    @property
    def returns_exact_scores(self) -> bool:
        """Whether :meth:`search` scores ARE the model's ranking scores.

        True for dot-metric backends that rescore their candidates against
        the stored full-precision vectors (exact, IVF, LSH, refined IVF-PQ):
        the serving layer can rank the returned scores directly.  False for
        cosine retrieval (angle ≠ biased dot score) and for quantized scans
        that return approximate distances — the serving layer then exactly
        rescores the candidates before ranking.
        """
        return self.metric == "dot"

    def _resolve_work_dtype(self, items: np.ndarray) -> np.dtype:
        if self.dtype is not None:
            return self.dtype
        return np.dtype(np.float32) if items.dtype == np.float32 else np.dtype(np.float64)

    def build(
        self,
        items: "np.ndarray | FactorizedRepresentations",
        item_biases: np.ndarray | None = None,
    ) -> "ItemIndex":
        """(Re)build the index over an item-representation matrix.

        ``items`` is either a ``(num_items, d)`` array or a
        :class:`~repro.models.base.FactorizedRepresentations` (whose item
        matrix and biases are used; an explicit ``item_biases`` argument is
        then disallowed).  The matrix is snapshotted — later in-place updates
        of the model do not leak into the index until the next build.
        """
        if isinstance(items, FactorizedRepresentations):
            if item_biases is not None:
                raise ValueError("pass biases either inside the representations or explicitly, not both")
            item_biases = items.item_biases
            items = items.items
        items = np.asarray(items)
        work = self._resolve_work_dtype(items)
        items = np.asarray(items, dtype=work)
        if items.ndim != 2 or items.shape[0] == 0:
            raise ValueError(f"expected a non-empty (num_items, d) matrix, got shape {items.shape}")
        if item_biases is not None:
            if self.metric == "cosine":
                raise ValueError("item biases have no cosine interpretation; use metric='dot'")
            item_biases = np.asarray(item_biases, dtype=work).reshape(-1)
            if item_biases.size != items.shape[0]:
                raise ValueError(
                    f"{item_biases.size} biases for {items.shape[0]} items"
                )
            items = np.hstack([items, item_biases[:, None]])
            self._has_bias = True
        else:
            items = items.copy()
            self._has_bias = False
        if self.metric == "cosine":
            items = _normalize_rows(items)
        self._vectors = items
        self._active = np.ones(items.shape[0], dtype=bool)
        self._readonly = False  # fresh private arrays, nothing snapshot-backed
        self._build()
        return self

    def rebuild(self) -> "ItemIndex":
        """Re-run the internal construction over the last built vectors.

        Deterministic: backends seed their stochastic parts (k-means
        initialisation, hash tables) from their fixed ``seed``, so a rebuild
        reproduces the same structures — change ``seed`` to re-draw them.
        Refreshing after a *model* change goes through :meth:`build`.
        """
        self._require_built()
        self._build()
        return self

    def maintain(self, force: bool = False) -> bool:
        """Run structural maintenance the backend deferred off the mutation path.

        Backends that re-organize themselves under churn (the IVF/IVF-PQ
        drift re-cluster) only *queue* that work inside ``upsert``/``delete``
        so the mutation latency stays flat; calling ``maintain()`` — e.g.
        from a background thread or a cron-style job — executes whatever is
        pending.  ``force=True`` runs the maintenance even when no threshold
        has tripped.  Returns whether any work ran; backends without
        deferred work (the default :meth:`_maintain` hook) do nothing and
        return False.
        """
        self._require_built()
        if not self._obs.enabled:
            return self._maintain(force)
        started = perf_counter()
        ran = self._maintain(force)
        if ran:
            self._met_maintain_seconds.observe(perf_counter() - started)
            self._met_maintain_runs.inc()
        return ran

    def _maintain(self, force: bool = False) -> bool:
        """Backend hook: execute deferred structural work, report whether any ran."""
        return False

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def config(self) -> dict:
        """Constructor kwargs reproducing this instance's configuration.

        ``build_index(index.name, **index.config())`` constructs an
        equivalent (unbuilt) index; the values are JSON-able (dtypes as
        name strings), so a snapshot manifest can round-trip them.
        Subclasses extend the base ``metric``/``dtype`` pair with their own
        parameters.
        """
        return {
            "metric": self.metric,
            "dtype": None if self.dtype is None else self.dtype.name,
        }

    def save(self, directory: "str | Path") -> Path:
        """Persist the built index as a crash-safe array bundle.

        The bundle holds everything :meth:`load` needs to answer searches
        byte-identically without re-running any training: the shared state
        (vectors, live mask, bias flag, ``config()``) plus the backend's
        own structures (centroids, cell lists, signatures, codebooks, …)
        from its ``_snapshot_arrays``/``_snapshot_state`` hooks.  Files are
        written atomically with the manifest last, so a crash mid-save
        never leaves a torn snapshot.
        """
        self._require_built()
        arrays: dict[str, np.ndarray] = {"vectors": self._vectors, "active": self._active}
        arrays.update(self._snapshot_arrays())
        meta = {
            "kind": SNAPSHOT_KIND,
            "backend": self.name,
            "config": self.config(),
            "has_bias": self._has_bias,
            "state": self._snapshot_state(),
        }
        return write_bundle(directory, arrays, meta=meta)

    @classmethod
    def load(cls, directory: "str | Path", mmap: bool = True) -> "ItemIndex":
        """Reconstruct a saved index from its snapshot bundle — no training.

        The backend is resolved through the registry from the manifest
        (``ItemIndex.load`` works on any snapshot; calling ``load`` on a
        concrete class additionally asserts the snapshot holds that
        backend).  With ``mmap=True`` the array payloads are memory-mapped
        read-only — an O(1) attach whatever the catalogue size — and the
        first mutating call promotes them to private copies; with
        ``mmap=False`` everything is read into (checksum-verified) memory
        up front.
        """
        from repro.index.registry import build_index

        meta, arrays = read_bundle(directory, mmap=mmap)
        if meta.get("kind") != SNAPSHOT_KIND:
            raise BundleError(f"{directory} is a {meta.get('kind')!r} bundle, not an index snapshot")
        index = build_index(str(meta.get("backend")), **dict(meta.get("config", {})))
        if not isinstance(index, cls):
            raise TypeError(
                f"snapshot at {directory} holds a {meta.get('backend')!r} index, "
                f"which is not a {cls.__name__}"
            )
        if index.dtype is not None and arrays["vectors"].dtype != index.dtype:
            raise BundleError(
                f"snapshot vectors are {arrays['vectors'].dtype}, config pins {index.dtype}"
            )
        index._has_bias = bool(meta.get("has_bias", False))
        index._vectors = arrays["vectors"]
        index._active = arrays["active"]
        index._readonly = bool(mmap)
        index._restore(arrays, dict(meta.get("state", {})))
        return index

    def is_live(self, item_ids: "np.ndarray | list[int]") -> np.ndarray:
        """Boolean mask: which of the given ids are currently searchable.

        Ids outside the id space count as not live (no error) — callers
        reconciling external ledgers against a loaded snapshot use this to
        find which retirements still need applying.
        """
        self._require_built()
        ids = np.asarray(item_ids, dtype=np.int64).reshape(-1)
        mask = (ids >= 0) & (ids < self._vectors.shape[0])
        mask[mask] = self._active[ids[mask]]
        return mask

    def _promote_writable(self) -> None:
        """Copy-on-write: replace snapshot-mapped arrays with private copies.

        Called by every mutating entry point before it writes.  A no-op
        unless the index was loaded with ``mmap=True`` and has not mutated
        yet; backends promote their own mapped structures via the
        :meth:`_promote` hook.
        """
        if not self._readonly:
            return
        self._vectors = np.array(self._vectors)
        self._active = np.array(self._active)
        self._promote()
        self._readonly = False

    # Backend persistence hooks ---------------------------------------- #
    def _snapshot_arrays(self) -> "dict[str, np.ndarray]":
        """Backend arrays to persist alongside the shared state."""
        return {}

    def _snapshot_state(self) -> dict:
        """Backend scalars/flags to persist in the manifest (JSON-able)."""
        return {}

    def _restore(self, arrays: "dict[str, np.ndarray]", state: dict) -> None:
        """Rebuild internal structures from a snapshot — without training."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement snapshot loading"
        )

    def _promote(self) -> None:
        """Copy backend arrays that mutating paths write in place (hook)."""

    # ------------------------------------------------------------------ #
    # Online maintenance
    # ------------------------------------------------------------------ #
    def upsert(
        self,
        item_ids: "np.ndarray | list[int]",
        vectors: np.ndarray,
        item_biases: np.ndarray | None = None,
    ) -> "ItemIndex":
        """Replace (or add) item vectors without rebuilding the index.

        ``item_ids`` may name existing items (their vectors are replaced,
        deleted ids are revived) or new ids — new ids must extend the id
        space contiguously, i.e. together they fill
        ``[num_items, num_items + #new)``.  ``vectors`` is the aligned
        ``(len(item_ids), d)`` matrix (a bare ``(d,)`` vector for a single
        id); when the index was built with item biases, ``item_biases`` must
        supply one bias per upserted row (and must be omitted otherwise).
        """
        self._require_built()
        started = perf_counter() if self._obs.enabled else 0.0
        ids = np.asarray(item_ids, dtype=np.int64).reshape(-1)
        if ids.size == 0:
            return self
        if np.unique(ids).size != ids.size:
            raise ValueError("duplicate item ids in one upsert batch")
        if ids.min() < 0:
            raise ValueError(f"item ids must be non-negative, got {ids.min()}")
        rows = np.asarray(vectors, dtype=self._vectors.dtype)
        if rows.ndim == 1:
            rows = rows[None, :]
        expected_dim = self._vectors.shape[1] - (1 if self._has_bias else 0)
        if rows.shape != (ids.size, expected_dim):
            raise ValueError(
                f"expected ({ids.size}, {expected_dim}) vectors for {ids.size} "
                f"upserted items, got shape {rows.shape}"
            )
        if self._has_bias:
            if item_biases is None:
                raise ValueError("this index folds item biases; upsert needs item_biases")
            biases = np.asarray(item_biases, dtype=self._vectors.dtype).reshape(-1)
            if biases.size != ids.size:
                raise ValueError(f"{biases.size} biases for {ids.size} upserted items")
            rows = np.hstack([rows, biases[:, None]])
        elif item_biases is not None:
            raise ValueError("this index was built without item biases; drop item_biases")
        else:
            rows = rows.copy()
        if self.metric == "cosine":
            rows = _normalize_rows(rows)
        # Validation is done; from here on the index mutates.  A snapshot-
        # mapped index first promotes its arrays to private copies so the
        # on-disk snapshot is never written through.
        self._promote_writable()
        size = self._vectors.shape[0]
        new_ids = ids[ids >= size]
        if new_ids.size:
            expected_new = np.arange(size, size + new_ids.size)
            if not np.array_equal(np.sort(new_ids), expected_new):
                raise ValueError(
                    f"new item ids must extend the id space contiguously "
                    f"(expected exactly {{{size}..{size + new_ids.size - 1}}}, "
                    f"got {np.sort(new_ids).tolist()})"
                )
            self._vectors = np.vstack(
                [self._vectors, np.zeros((new_ids.size, self._vectors.shape[1]), dtype=self._vectors.dtype)]
            )
            self._active = np.concatenate([self._active, np.zeros(new_ids.size, dtype=bool)])
            self._apply_growth(size + new_ids.size)
        was_active = self._active[ids].copy()
        self._vectors[ids] = rows
        self._active[ids] = True
        self._apply_upsert(ids, rows, was_active)
        if self._obs.enabled:
            self._met_upsert_seconds.observe(perf_counter() - started)
        return self

    def delete(self, item_ids: "np.ndarray | list[int]") -> "ItemIndex":
        """Retire items: they are never returned by :meth:`search` again.

        Deleting an id that was never inserted — or was already deleted —
        raises :class:`KeyError`.  Deleted ids stay reserved in the id space
        and can be revived by a later :meth:`upsert`.
        """
        self._require_built()
        started = perf_counter() if self._obs.enabled else 0.0
        ids = np.asarray(item_ids, dtype=np.int64).reshape(-1)
        if ids.size == 0:
            return self
        if np.unique(ids).size != ids.size:
            raise ValueError("duplicate item ids in one delete batch")
        dead = (ids < 0) | (ids >= self._vectors.shape[0])
        dead[~dead] = ~self._active[ids[~dead]]
        if dead.any():
            raise KeyError(
                f"items {ids[dead].tolist()} are not in the index "
                "(never inserted or already deleted)"
            )
        self._promote_writable()
        self._active[ids] = False
        self._apply_delete(ids)
        if self._obs.enabled:
            self._met_delete_seconds.observe(perf_counter() - started)
        return self

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Ids and scores of the ``k`` best items per query, best first.

        ``queries`` is ``(num_queries, d)`` (one query may be passed as a
        bare ``(d,)`` vector).  Returns ``(ids, scores)`` of shape
        ``(num_queries, k)`` with ``-1`` / ``-inf`` padding for queries that
        reach fewer than ``k`` items.  Queries are scored in the index's
        working dtype; scores always come back as float64.
        """
        self._require_built()
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        _failpoint("index.search")
        queries = self._prepare_queries(queries)
        if not self._active.any():
            # Every item deleted: pure padding, no backend involvement.
            ids = np.full((queries.shape[0], int(k)), PAD_ID, dtype=np.int64)
            return ids, np.full(ids.shape, PAD_SCORE, dtype=np.float64)
        if self._obs.enabled:
            started = perf_counter()
            ids, scores = self._search(queries, int(k))
            self._met_search_seconds.observe(perf_counter() - started)
            self._met_queries.inc(queries.shape[0])
        else:
            ids, scores = self._search(queries, int(k))
        # Scores leave the index as float64 whatever the working dtype, so
        # downstream consumers see one precision (tie-break determinism).
        return ids, scores.astype(np.float64, copy=False)

    def _prepare_queries(self, queries: np.ndarray) -> np.ndarray:
        """Validate + cast queries, fold the bias coordinate / normalize."""
        queries = np.asarray(queries, dtype=self._vectors.dtype)
        if queries.ndim == 1:
            queries = queries[None, :]
        if queries.ndim != 2:
            raise ValueError(f"expected (num_queries, d) queries, got shape {queries.shape}")
        expected_dim = self._vectors.shape[1] - (1 if self._has_bias else 0)
        if queries.shape[1] != expected_dim:
            raise ValueError(
                f"index was built over {expected_dim}-dimensional items, "
                f"got {queries.shape[1]}-dimensional queries"
            )
        if self._has_bias:
            queries = np.hstack([queries, np.ones((queries.shape[0], 1), dtype=queries.dtype)])
        elif self.metric == "cosine":
            queries = _normalize_rows(queries)
        return queries

    # ------------------------------------------------------------------ #
    # Backend hooks
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        """Construct internal structures over ``self._vectors`` (optional)."""

    def _search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError(f"{type(self).__name__} does not implement _search()")

    def _apply_growth(self, new_size: int) -> None:
        """Grow per-id auxiliary arrays after the id space was extended.

        Called by :meth:`upsert` right after ``self._vectors``/``self._active``
        grew to ``new_size`` rows and before :meth:`_apply_upsert` sees the
        new ids.  The default is a no-op for backends without per-id state.
        """

    def _apply_upsert(self, item_ids: np.ndarray, rows: np.ndarray, was_active: np.ndarray) -> None:
        """Apply prepared row updates to the backend's internal structures.

        ``rows`` are already bias-folded / normalized and written into
        ``self._vectors``; ``was_active`` flags which ids were live before
        the call (``False`` = brand new or revived).  Backends without an
        incremental path must override or fall back to :meth:`build`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement incremental upserts; "
            "rebuild via build() instead"
        )

    def _apply_delete(self, item_ids: np.ndarray) -> None:
        """Remove ids (already marked inactive) from the backend's structures."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement incremental deletes; "
            "rebuild via build() instead"
        )

    def _require_built(self) -> None:
        if self._vectors is None:
            raise RuntimeError(f"{type(self).__name__} has not been built; call build() first")

    def __repr__(self) -> str:
        built = f"items={self.num_items}" if self.is_built else "unbuilt"
        return f"{type(self).__name__}(metric={self.metric!r}, {built})"


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Unit-normalize rows; all-zero rows stay zero (cosine 0 to everything)."""
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return np.divide(matrix, norms, out=np.zeros_like(matrix), where=norms > 0)
