"""The common interface of the candidate-retrieval index backends.

An :class:`ItemIndex` is built once from the catalogue's item representations
(a plain ``(num_items, d)`` matrix, or a serving-layer
:class:`~repro.models.base.FactorizedRepresentations` whose item side it
takes) and then answers batched ``search(queries, k)`` calls with the ids and
scores of each query's best items.  Two metrics are supported:

* ``"dot"`` — the raw inner product ``q · x (+ b_x)``, the score every
  factorized recommender in the library ranks by.  Optional additive item
  biases are folded in by augmenting the item vectors with a bias coordinate
  and the queries with a constant ``1``, so *every* backend handles them
  uniformly.
* ``"cosine"`` — the angle between query and item; item and query vectors
  are normalized once, zero vectors score ``0`` against everything.  Biases
  have no cosine interpretation and are rejected.

The contract shared by all backends: ``search`` returns ``(ids, scores)``
matrices of shape ``(num_queries, k)``, best first, score ties broken by
ascending item id, padded with ``-1`` ids / ``-inf`` scores when a query has
fewer than ``k`` reachable items.  :class:`~repro.index.exact.ExactIndex`
reaches the whole catalogue and is the correctness oracle the approximate
backends are measured against (:func:`repro.index.recall.recall_at_k`).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import FactorizedRepresentations

__all__ = ["ItemIndex", "METRICS"]

#: Similarity metrics every backend must support.
METRICS = ("dot", "cosine")


class ItemIndex:
    """Base class of the candidate-retrieval backends.

    Subclasses implement :meth:`_build` (construct internal structures from
    the prepared ``vectors`` matrix) and :meth:`_search` (answer prepared
    queries); metric handling, bias augmentation, validation and the
    build/rebuild lifecycle live here.
    """

    #: registry name; subclasses override (see :mod:`repro.index.registry`)
    name: str = "item-index"

    def __init__(self, metric: str = "dot") -> None:
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; choose from {METRICS}")
        self.metric = metric
        self._vectors: np.ndarray | None = None
        self._has_bias = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has been called."""
        return self._vectors is not None

    @property
    def num_items(self) -> int:
        """Catalogue size of the last :meth:`build` (0 before any build)."""
        return 0 if self._vectors is None else int(self._vectors.shape[0])

    def build(
        self,
        items: "np.ndarray | FactorizedRepresentations",
        item_biases: np.ndarray | None = None,
    ) -> "ItemIndex":
        """(Re)build the index over an item-representation matrix.

        ``items`` is either a ``(num_items, d)`` array or a
        :class:`~repro.models.base.FactorizedRepresentations` (whose item
        matrix and biases are used; an explicit ``item_biases`` argument is
        then disallowed).  The matrix is snapshotted — later in-place updates
        of the model do not leak into the index until the next build.
        """
        if isinstance(items, FactorizedRepresentations):
            if item_biases is not None:
                raise ValueError("pass biases either inside the representations or explicitly, not both")
            item_biases = items.item_biases
            items = items.items
        items = np.asarray(items, dtype=np.float64)
        if items.ndim != 2 or items.shape[0] == 0:
            raise ValueError(f"expected a non-empty (num_items, d) matrix, got shape {items.shape}")
        if item_biases is not None:
            if self.metric == "cosine":
                raise ValueError("item biases have no cosine interpretation; use metric='dot'")
            item_biases = np.asarray(item_biases, dtype=np.float64).reshape(-1)
            if item_biases.size != items.shape[0]:
                raise ValueError(
                    f"{item_biases.size} biases for {items.shape[0]} items"
                )
            items = np.hstack([items, item_biases[:, None]])
            self._has_bias = True
        else:
            items = items.copy()
            self._has_bias = False
        if self.metric == "cosine":
            items = _normalize_rows(items)
        self._vectors = items
        self._build()
        return self

    def rebuild(self) -> "ItemIndex":
        """Re-run the internal construction over the last built vectors.

        Deterministic: backends seed their stochastic parts (k-means
        initialisation, hash tables) from their fixed ``seed``, so a rebuild
        reproduces the same structures — change ``seed`` to re-draw them.
        Refreshing after a *model* change goes through :meth:`build`.
        """
        self._require_built()
        self._build()
        return self

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Ids and scores of the ``k`` best items per query, best first.

        ``queries`` is ``(num_queries, d)`` (one query may be passed as a
        bare ``(d,)`` vector).  Returns ``(ids, scores)`` of shape
        ``(num_queries, k)`` with ``-1`` / ``-inf`` padding for queries that
        reach fewer than ``k`` items.
        """
        self._require_built()
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries[None, :]
        if queries.ndim != 2:
            raise ValueError(f"expected (num_queries, d) queries, got shape {queries.shape}")
        expected_dim = self._vectors.shape[1] - (1 if self._has_bias else 0)
        if queries.shape[1] != expected_dim:
            raise ValueError(
                f"index was built over {expected_dim}-dimensional items, "
                f"got {queries.shape[1]}-dimensional queries"
            )
        if self._has_bias:
            queries = np.hstack([queries, np.ones((queries.shape[0], 1))])
        elif self.metric == "cosine":
            queries = _normalize_rows(queries)
        return self._search(queries, int(k))

    # ------------------------------------------------------------------ #
    # Backend hooks
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        """Construct internal structures over ``self._vectors`` (optional)."""

    def _search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError(f"{type(self).__name__} does not implement _search()")

    def _require_built(self) -> None:
        if self._vectors is None:
            raise RuntimeError(f"{type(self).__name__} has not been built; call build() first")

    def __repr__(self) -> str:
        built = f"items={self.num_items}" if self.is_built else "unbuilt"
        return f"{type(self).__name__}(metric={self.metric!r}, {built})"


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Unit-normalize rows; all-zero rows stay zero (cosine 0 to everything)."""
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return np.divide(matrix, norms, out=np.zeros_like(matrix), where=norms > 0)
