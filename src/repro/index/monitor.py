"""Served-traffic recall monitoring: does ANN quality hold up in production?

Offline recall benchmarks measure an index against the query distribution
the operator *imagined*; :class:`RecallMonitor` measures it against the
queries actually served.  A configurable sample of serving requests is
shadow-rescored against an :class:`~repro.index.exact.ExactIndex` kept in
lockstep with the primary index (same representation snapshot, same
upserts/deletes), and two windowed statistics summarize the drift:

* **recall@k** — the fraction of the exact top-``k`` that survived into the
  top-``k`` of the exactly-rescored candidates (the list the service ranks
  and filters from);
* **candidate hit rate** — the fraction of the exact top-``k`` present
  anywhere in the retrieved candidate set, i.e. the retrieval stage's
  recall before the ``k`` truncation.

Sampling is two-level so the overhead stays bounded: each *request* is
sampled with probability ``sample_rate``, and within a sampled request at
most ``max_users_per_request`` user rows are shadow-rescored — one small
extra matmul per sampled request, independent of the request's batch size.
:meth:`RecommendationService.stats() <repro.serving.RecommendationService.stats>`
exposes the windowed numbers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.index.exact import ExactIndex
from repro.index.topk import PAD_ID, padded_top_k
from repro.obs import NULL_OBS
from repro.utils.rng import new_rng

__all__ = ["MonitorStats", "RecallMonitor"]


@dataclass(frozen=True)
class MonitorStats:
    """Windowed shadow-scoring statistics of a :class:`RecallMonitor`."""

    sample_rate: float
    window: int
    #: requests / user rows shadow-rescored since construction (lifetime)
    sampled_requests: int
    sampled_users: int
    #: windowed means; ``None`` until the first sample lands
    recall_at_k: float | None
    candidate_hit_rate: float | None
    #: the operator's served-traffic recall target (None = not monitoring
    #: against a target; auto-tuning needs one)
    target_recall: float | None = None


class RecallMonitor:
    """Shadow-rescore a sample of served requests against the exact oracle.

    Parameters
    ----------
    sample_rate:
        probability that a request is shadow-rescored (``0`` disables
        sampling, ``1`` monitors every request).
    window:
        number of most-recent sampled user rows the statistics average over.
    max_users_per_request:
        cap on shadow-rescored user rows per sampled request; keeps the
        overhead of monitoring a huge batch request bounded.
    seed:
        seed of the sampling RNG (deterministic monitoring for tests).
    target_recall:
        served-traffic recall@k the retrieval stage should hold.  With a
        target set, :meth:`suggest_probe` maps the windowed recall onto a
        suggested probe width (``nprobe`` / ``hamming_radius``) —
        ``service.stats()`` surfaces it and ``auto_tune=True`` applies it.
    hysteresis:
        dead band above the target: the suggestion only *narrows* the probe
        once windowed recall exceeds ``target_recall + hysteresis``, so a
        system sitting right at the target cannot flap wider/narrower.

    The monitor owns its oracle (:attr:`exact`, a dot-metric
    :class:`~repro.index.exact.ExactIndex` — ground truth is always the
    model's true biased dot score, whatever metric the primary index uses).
    The owner keeps it in lockstep with the served representations via
    :meth:`rebuild` / :meth:`upsert` / :meth:`delete`;
    :class:`~repro.serving.RecommendationService` does this automatically.
    """

    def __init__(
        self,
        sample_rate: float = 0.1,
        window: int = 512,
        max_users_per_request: int = 8,
        seed: int = 0,
        target_recall: float | None = None,
        hysteresis: float = 0.05,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must lie in [0, 1], got {sample_rate}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if max_users_per_request <= 0:
            raise ValueError(f"max_users_per_request must be positive, got {max_users_per_request}")
        if target_recall is not None and not 0.0 < target_recall <= 1.0:
            raise ValueError(f"target_recall must lie in (0, 1], got {target_recall}")
        if hysteresis <= 0.0:
            raise ValueError(f"hysteresis must be positive, got {hysteresis}")
        self.sample_rate = sample_rate
        self.window = window
        self.max_users_per_request = max_users_per_request
        self.target_recall = target_recall
        self.hysteresis = hysteresis
        self.exact = ExactIndex(metric="dot")
        self._rng = new_rng(seed)
        self._recalls: deque[float] = deque(maxlen=window)
        self._hit_rates: deque[float] = deque(maxlen=window)
        self._sampled_requests = 0
        self._sampled_users = 0
        self.bind_obs(NULL_OBS)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def bind_obs(self, obs) -> None:
        """Attach an :class:`~repro.obs.Observability` bundle to this monitor.

        Shadow-scoring cost and volume become visible as
        ``repro_monitor_observe_seconds`` / ``repro_monitor_sampled_users_total``.
        """
        self._obs = obs
        self._met_observe_seconds = obs.registry.histogram(
            "repro_monitor_observe_seconds",
            "Seconds per RecallMonitor.observe shadow-scoring call.",
        )
        self._met_sampled_users = obs.registry.counter(
            "repro_monitor_sampled_users_total",
            "User rows shadow-rescored against the exact oracle.",
        )

    # ------------------------------------------------------------------ #
    # Oracle lifecycle (driven by the owning service)
    # ------------------------------------------------------------------ #
    def rebuild(self, items: np.ndarray, item_biases: np.ndarray | None = None) -> None:
        """(Re)build the shadow oracle over a representation snapshot."""
        self.exact.build(items, item_biases=item_biases)

    def upsert(self, item_ids: np.ndarray, vectors: np.ndarray, item_biases: np.ndarray | None = None) -> None:
        """Mirror a row-level update of the served representations."""
        self.exact.upsert(item_ids, vectors, item_biases=item_biases)

    def delete(self, item_ids: np.ndarray) -> None:
        """Mirror a catalogue deletion."""
        self.exact.delete(item_ids)

    # ------------------------------------------------------------------ #
    # Sampling & observation
    # ------------------------------------------------------------------ #
    def sample(self, num_rows: int) -> np.ndarray:
        """Row indices of a request to shadow-rescore (often empty).

        One Bernoulli draw decides whether this request is sampled at all;
        a sampled request contributes at most ``max_users_per_request``
        distinct rows, drawn uniformly.
        """
        if num_rows <= 0 or self.sample_rate <= 0.0 or self._rng.random() >= self.sample_rate:
            return np.empty(0, dtype=np.int64)
        take = min(self.max_users_per_request, num_rows)
        rows = self._rng.choice(num_rows, size=take, replace=False)
        rows.sort()
        return rows.astype(np.int64, copy=False)

    def observe(
        self,
        queries: np.ndarray,
        candidate_ids: np.ndarray,
        candidate_scores: np.ndarray,
        k: int,
    ) -> None:
        """Record one sampled batch of served rows.

        ``queries`` are the sampled rows' query vectors (pre bias
        augmentation), ``candidate_ids`` / ``candidate_scores`` their
        retrieved candidates with *exact model scores* (pre filtering), and
        ``k`` the request's ranking depth.
        """
        if not self.exact.is_built:
            raise RuntimeError("RecallMonitor oracle is not built; call rebuild() first")
        started = perf_counter() if self._obs.enabled else 0.0
        exact_ids, _ = self.exact.search(queries, k)
        served_ids, _ = padded_top_k(candidate_ids, candidate_scores, k)
        self._sampled_requests += 1
        for row in range(queries.shape[0]):
            truth = exact_ids[row]
            truth = truth[truth != PAD_ID]
            candidates = candidate_ids[row]
            candidates = candidates[candidates != PAD_ID]
            served = served_ids[row]
            served = served[served != PAD_ID]
            if truth.size == 0:
                recall = hit_rate = 1.0
            else:
                recall = float(np.isin(truth, served).mean())
                hit_rate = float(np.isin(truth, candidates).mean())
            self._recalls.append(recall)
            self._hit_rates.append(hit_rate)
            self._sampled_users += 1
        if self._obs.enabled:
            self._met_observe_seconds.observe(perf_counter() - started)
            self._met_sampled_users.inc(queries.shape[0])

    def stats(self) -> MonitorStats:
        """The windowed statistics as an immutable snapshot."""
        return MonitorStats(
            sample_rate=self.sample_rate,
            window=self.window,
            sampled_requests=self._sampled_requests,
            sampled_users=self._sampled_users,
            recall_at_k=float(np.mean(self._recalls)) if self._recalls else None,
            candidate_hit_rate=float(np.mean(self._hit_rates)) if self._hit_rates else None,
            target_recall=self.target_recall,
        )

    # ------------------------------------------------------------------ #
    # Target-driven tuning
    # ------------------------------------------------------------------ #
    def reset_window(self) -> None:
        """Drop the windowed statistics (lifetime counters stay).

        Call after changing the probed width of the monitored index: samples
        collected under the old setting no longer describe the new one.
        """
        self._recalls.clear()
        self._hit_rates.clear()

    def suggest_probe(self, current: int, lower: int, upper: int) -> int:
        """The probe width the windowed recall argues for, within bounds.

        Maps the windowed recall@k against :attr:`target_recall`:

        * below the target → widen (double, at least +1, capped at
          ``upper``) — recall rises monotonically with probe width;
        * above ``target + hysteresis`` → narrow by a quarter (floored at
          ``lower``), reclaiming latency conservatively;
        * inside the dead band (or no target / no samples yet) → keep
          ``current``.

        Pure function of the window — callers decide when to *apply* it
        (``RecommendationService(auto_tune=True)`` does, with a cooldown).
        """
        if lower > upper:
            raise ValueError(f"empty probe range [{lower}, {upper}]")
        current = int(np.clip(current, lower, upper))
        if self.target_recall is None or not self._recalls:
            return current
        recall = float(np.mean(self._recalls))
        if recall < self.target_recall:
            return min(upper, max(current + 1, 2 * current))
        if recall >= self.target_recall + self.hysteresis and current > lower:
            return max(lower, current - max(1, current // 4))
        return current

    def __repr__(self) -> str:
        stats = self.stats()
        recall = "n/a" if stats.recall_at_k is None else f"{stats.recall_at_k:.3f}"
        return (
            f"RecallMonitor(sample_rate={self.sample_rate}, window={self.window}, "
            f"sampled_users={stats.sampled_users}, recall_at_k={recall})"
        )
