"""Recall harness: measure any backend against the exact oracle.

``recall@k`` of an approximate index is the fraction of the *true* top-``k``
(as ranked by :class:`~repro.index.exact.ExactIndex` over the same vectors)
that the backend retrieves.  This is the standard ANN quality metric and the
quantity the index benchmark (``benchmarks/test_bench_index.py``) floors:
trading it off against search latency is exactly the knob ``nprobe`` /
``hamming_radius`` expose.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import ItemIndex
from repro.index.topk import PAD_ID

__all__ = ["recall_at_k"]


def recall_at_k(
    index: ItemIndex,
    reference: "ItemIndex | np.ndarray",
    queries: np.ndarray,
    k: int,
    per_query: bool = False,
) -> "float | np.ndarray":
    """Fraction of the reference top-``k`` that ``index`` retrieves.

    ``reference`` is either an index to query (normally an
    :class:`~repro.index.exact.ExactIndex` built over the same vectors) or a
    precomputed ``(num_queries, k)`` id matrix of true neighbours (``-1``
    padding ignored).  Queries with an empty reference set count as recall 1.

    Returns the mean recall, or the per-query vector with ``per_query=True``.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if isinstance(reference, ItemIndex):
        reference_ids = reference.search(queries, k)[0]
    else:
        reference_ids = np.asarray(reference, dtype=np.int64)
        if reference_ids.ndim != 2:
            raise ValueError(f"expected a (num_queries, k) id matrix, got shape {reference_ids.shape}")
    retrieved_ids = index.search(queries, k)[0]
    if retrieved_ids.shape[0] != reference_ids.shape[0]:
        raise ValueError(
            f"{retrieved_ids.shape[0]} retrieved rows vs {reference_ids.shape[0]} reference rows"
        )
    recalls = np.ones(reference_ids.shape[0], dtype=np.float64)
    for row in range(reference_ids.shape[0]):
        truth = reference_ids[row]
        truth = truth[truth != PAD_ID]
        if truth.size == 0:
            continue
        found = retrieved_ids[row]
        recalls[row] = np.isin(truth, found[found != PAD_ID]).mean()
    if per_query:
        return recalls
    return float(recalls.mean())
