"""IVF-PQ: product-quantized inverted lists with vectorized ADC scanning.

At catalogue scale the flat IVF scan is memory-bound: every probed item
drags ``d`` float entries through the cache just to take one dot product.
Product quantization (Jégou et al.'s IVFADC design) compresses each stored
vector to ``num_subspaces`` uint8 codes — the vector is split into
subspaces, each subspace k-means-clustered into ≤256 centroids, and the
vector replaced by the per-subspace centroid ids.  A 48-dim float64 row
(384 bytes) becomes 8 bytes: the scan touches ~48× less memory.

Searching uses **asymmetric distance computation** (ADC): the query stays
full-precision, and one ``(num_subspaces, 256)`` lookup table per query —
``table[m, j] = q_m · codebook[m][j]`` — turns each stored code into an
approximate dot product, ``score(q, x) ≈ Σ_m table[m, code_m(x)]``, i.e.
exactly ``q · decode(encode(x))``.  The probed cells are scanned with a
single fancy-indexed gather + sum per cell batch (no per-item Python
loops), riding the same grouped-by-cell assembly as the flat IVF scan.

Two quality refinements close most of the quantization gap:

* **residual encoding** (default) — codes store ``x - centroid(cell(x))``
  rather than ``x``; residuals are small and centred so the same codebook
  budget spends its resolution where the data actually is.  The coarse term
  ``q · centroid`` is added back from the already-computed probe scores.
* **exact re-ranking** — the ADC scan keeps the top
  ``refine_factor × k`` candidates, which are rescored against the stored
  full-precision vectors before the final top-k.  With it, returned scores
  are exact (the serving layer ranks them directly); set
  ``refine_factor=None`` for the raw ADC scores and let the serving rescore
  path handle exactness.

The full online-maintenance contract is inherited from
:class:`~repro.index.ivf.IVFIndex`: upserts encode against the trained
codebooks and link to the nearest cell, deletes tombstone, drift queues a
warm-started re-cluster for :meth:`~repro.index.base.ItemIndex.maintain`,
which also warm-retrains the codebooks on the new residuals and re-encodes
the live catalogue (bounded Lloyd iterations — a small multiple of one
assignment pass, run off the request path).
"""

from __future__ import annotations

import numpy as np

from repro.index.ivf import IVFIndex
from repro.index.kmeans import lloyd, nearest_centroid
from repro.index.registry import register_index
from repro.index.topk import PAD_ID, PAD_SCORE, dense_top_k, padded_top_k
from repro.utils.rng import new_rng

__all__ = ["IVFPQIndex", "PQCodec"]

#: Centroids per subspace — one uint8 code, the standard PQ choice.
CODEBOOK_SIZE = 256

#: Training vectors are subsampled beyond this many rows per codebook
#: centroid; k-means quality saturates long before the full catalogue.
TRAIN_ROWS_PER_CENTROID = 64

#: Element budget of one exact-re-ranking gather chunk (matches the serving
#: rescore path): the (rows, rescore_k, dim) gather is processed in row
#: chunks so peak memory stays flat.
REFINE_CHUNK_ELEMENTS = 1 << 22


class PQCodec:
    """Per-subspace k-means codebooks with vectorized encode/decode/ADC.

    The input dimension is split into ``num_subspaces`` contiguous blocks
    (zero-padded up to an even split — zero padding is dot-product-neutral);
    :meth:`train` clusters each block into ``min(256, num_training_rows)``
    centroids, :meth:`encode` maps vectors to ``(n, num_subspaces)`` uint8
    codes, :meth:`decode` reconstructs, and :meth:`lookup_tables` builds the
    per-query ADC tables such that
    ``tables[q, m, encode(x)[m]]`` summed over ``m`` equals
    ``q · decode(encode(x))``.
    """

    def __init__(self, num_subspaces: int = 8, kmeans_iters: int = 10, seed: int = 0) -> None:
        if num_subspaces <= 0:
            raise ValueError(f"num_subspaces must be positive, got {num_subspaces}")
        if kmeans_iters <= 0:
            raise ValueError(f"kmeans_iters must be positive, got {kmeans_iters}")
        self.num_subspaces = num_subspaces
        self.kmeans_iters = kmeans_iters
        self.seed = seed
        self.codebooks: np.ndarray | None = None  # (m, ksub, dsub)
        self.dim = 0  # input dimension the codec was trained for
        self._subspaces = 0  # num_subspaces clamped to the dimension
        self._dsub = 0  # padded width of one subspace

    # ------------------------------------------------------------------ #
    @property
    def is_trained(self) -> bool:
        return self.codebooks is not None

    @property
    def effective_subspaces(self) -> int:
        """Subspaces actually used (``num_subspaces`` clamped to the dim)."""
        return 0 if self.codebooks is None else int(self.codebooks.shape[0])

    @property
    def codebook_size(self) -> int:
        """Centroids per subspace (≤ 256; clamped to the training size)."""
        return 0 if self.codebooks is None else int(self.codebooks.shape[1])

    def train(self, vectors: np.ndarray) -> "PQCodec":
        """Fit the per-subspace codebooks to a training matrix."""
        vectors = np.asarray(vectors)
        if vectors.ndim != 2 or vectors.shape[0] == 0:
            raise ValueError(f"expected a non-empty (n, d) training matrix, got shape {vectors.shape}")
        num_rows, dim = vectors.shape
        subspaces = min(self.num_subspaces, dim)
        self.dim = int(dim)
        self._subspaces = int(subspaces)
        self._dsub = int(np.ceil(dim / subspaces))
        ksub = min(CODEBOOK_SIZE, num_rows)
        rng = new_rng(self.seed)
        train_rows = min(num_rows, max(4096, TRAIN_ROWS_PER_CENTROID * ksub))
        if train_rows < num_rows:
            vectors = vectors[rng.choice(num_rows, size=train_rows, replace=False)]
        blocks = self._split(vectors)
        self.codebooks = np.empty((subspaces, ksub, self._dsub), dtype=vectors.dtype)
        for sub in range(subspaces):
            block = np.ascontiguousarray(blocks[:, sub])
            centroids = block[rng.choice(block.shape[0], size=ksub, replace=False)].copy()
            lloyd(block, centroids, self.kmeans_iters, rng)
            self.codebooks[sub] = centroids
        return self

    def retrain(self, vectors: np.ndarray, iters: int, rng: np.random.Generator) -> "PQCodec":
        """Warm-start the codebooks on fresh data (bounded Lloyd iterations).

        Keeps the trained geometry (same subspace split, same codebook size)
        and moves the existing centroids a few steps toward the new
        distribution — the incremental-maintenance counterpart of
        :meth:`train`, used by the IVF-PQ drift re-cluster.
        """
        self._require_trained()
        vectors = np.asarray(vectors)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}) vectors, got shape {vectors.shape}")
        if vectors.shape[0] == 0:
            return self
        blocks = self._split(vectors)
        for sub in range(self.effective_subspaces):
            lloyd(np.ascontiguousarray(blocks[:, sub]), self.codebooks[sub], iters, rng)
        return self

    # ------------------------------------------------------------------ #
    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """``(n, num_subspaces)`` uint8 codes: nearest centroid per subspace."""
        self._require_trained()
        vectors = np.asarray(vectors)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}) vectors, got shape {vectors.shape}")
        blocks = self._split(vectors)
        codes = np.empty((vectors.shape[0], self.effective_subspaces), dtype=np.uint8)
        for sub in range(self.effective_subspaces):
            codes[:, sub] = nearest_centroid(np.ascontiguousarray(blocks[:, sub]), self.codebooks[sub])
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct ``(n, dim)`` vectors from codes (centroid lookup)."""
        self._require_trained()
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != self.effective_subspaces:
            raise ValueError(
                f"expected (n, {self.effective_subspaces}) codes, got shape {codes.shape}"
            )
        out = np.empty((codes.shape[0], self.effective_subspaces * self._dsub), dtype=self.codebooks.dtype)
        for sub in range(self.effective_subspaces):
            out[:, sub * self._dsub : (sub + 1) * self._dsub] = self.codebooks[sub][codes[:, sub]]
        return out[:, : self.dim]

    def lookup_tables(self, queries: np.ndarray) -> np.ndarray:
        """Per-query ADC tables: ``(num_queries, num_subspaces, codebook_size)``.

        ``tables[q, m, j] = queries[q]_m · codebooks[m][j]``, so summing
        ``tables[q, m, codes[x, m]]`` over ``m`` is the ADC approximation of
        ``queries[q] · x`` — exactly ``q · decode(encode(x))``.
        """
        self._require_trained()
        queries = np.asarray(queries)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}) queries, got shape {queries.shape}")
        blocks = self._split(queries)  # (n, m, dsub)
        tables = np.empty(
            (queries.shape[0], self._subspaces, self.codebook_size), dtype=self.codebooks.dtype
        )
        for sub in range(self._subspaces):
            # One small BLAS matmul per subspace beats a generic einsum.
            tables[:, sub] = np.ascontiguousarray(blocks[:, sub]) @ self.codebooks[sub].T
        return tables

    def reconstruction_error(self, vectors: np.ndarray) -> float:
        """Mean squared reconstruction error of an encode/decode round trip."""
        vectors = np.asarray(vectors)
        residual = vectors - self.decode(self.encode(vectors))
        return float(np.mean(residual.astype(np.float64) ** 2))

    # ------------------------------------------------------------------ #
    def _split(self, vectors: np.ndarray) -> np.ndarray:
        """View ``(n, dim)`` rows as ``(n, m, dsub)`` zero-padded subspaces."""
        padded_dim = self._subspaces * self._dsub
        if vectors.shape[1] < padded_dim:
            padded = np.zeros((vectors.shape[0], padded_dim), dtype=vectors.dtype)
            padded[:, : vectors.shape[1]] = vectors
            vectors = padded
        return vectors.reshape(vectors.shape[0], self._subspaces, self._dsub)

    def _require_trained(self) -> None:
        if not self.is_trained:
            raise RuntimeError("PQCodec is not trained; call train() first")

    def __repr__(self) -> str:
        if not self.is_trained:
            return f"PQCodec(num_subspaces={self.num_subspaces}, untrained)"
        return (
            f"PQCodec(subspaces={self.effective_subspaces}, "
            f"codebook={self.codebook_size}, dim={self.dim})"
        )


@register_index("ivfpq")
class IVFPQIndex(IVFIndex):
    """Inverted-file index over PQ codes with ADC scanning + exact re-ranking.

    All :class:`~repro.index.ivf.IVFIndex` parameters apply; additionally:

    Parameters
    ----------
    num_subspaces:
        PQ subspaces, i.e. uint8 code bytes per stored item.  The scan-path
        compression over float64 storage is ``8 × d / num_subspaces``.
    pq_iters:
        Lloyd iterations per subspace codebook at (re)build time.
    residual:
        encode residuals relative to the item's coarse centroid (default)
        instead of the raw vectors; markedly lower quantization error for
        the same code budget.
    refine_factor:
        the ADC scan keeps ``ceil(refine_factor × k)`` candidates per query
        and exactly rescores them against the stored full-precision vectors,
        so returned scores are exact and recall@k approaches the flat IVF
        scan's.  ``None`` skips re-ranking and returns raw ADC scores (the
        serving layer then rescores candidates itself).
    """

    name = "ivfpq"

    def __init__(
        self,
        metric: str = "dot",
        nlist: int | None = None,
        nprobe: int = 8,
        kmeans_iters: int = 10,
        rebuild_threshold: float = 0.25,
        recluster_iters: int = 2,
        seed: int = 0,
        dtype: "str | np.dtype | None" = None,
        num_subspaces: int = 8,
        pq_iters: int = 10,
        residual: bool = True,
        refine_factor: float | None = 4.0,
    ) -> None:
        super().__init__(
            metric=metric,
            nlist=nlist,
            nprobe=nprobe,
            kmeans_iters=kmeans_iters,
            rebuild_threshold=rebuild_threshold,
            recluster_iters=recluster_iters,
            seed=seed,
            dtype=dtype,
        )
        if num_subspaces <= 0:
            raise ValueError(f"num_subspaces must be positive, got {num_subspaces}")
        if pq_iters <= 0:
            raise ValueError(f"pq_iters must be positive, got {pq_iters}")
        if refine_factor is not None and refine_factor < 1.0:
            raise ValueError(f"refine_factor must be ≥ 1 (or None), got {refine_factor}")
        self.num_subspaces = num_subspaces
        self.pq_iters = pq_iters
        self.residual = residual
        self.refine_factor = refine_factor
        self._codec: PQCodec | None = None
        self._codes: np.ndarray | None = None  # (id space, m) uint8

    # ------------------------------------------------------------------ #
    @property
    def returns_exact_scores(self) -> bool:
        """Exact only when re-ranking rescores against the stored vectors."""
        return self.metric == "dot" and self.refine_factor is not None

    @property
    def codec(self) -> PQCodec | None:
        """The trained codec (None before the first build)."""
        return self._codec

    @property
    def code_bytes(self) -> int:
        """Bytes of the quantized scan-path store (codes over the id space)."""
        return 0 if self._codes is None else int(self._codes.nbytes)

    @property
    def compression_ratio(self) -> float:
        """Per-item compression of the scan path vs. float64 vector storage.

        The ADC scan reads ``num_subspaces`` uint8 codes per probed item
        where the flat scan reads ``d`` float64 entries; the full-precision
        rows are only touched for the small re-ranked candidate set (and for
        maintenance), exactly as the serving cache keeps them anyway.
        """
        if self._codes is None or self._vectors is None:
            return 0.0
        return (self._vectors.shape[1] * 8.0) / self._codes.shape[1]

    def _bind_backend_metrics(self, registry, labels: "dict[str, str]") -> None:
        super()._bind_backend_metrics(registry, labels)
        self._met_adc_tables = registry.counter(
            "repro_index_adc_table_builds_total",
            "Per-query ADC lookup tables built for quantized scans.",
            labels=labels,
        )

    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        super()._build()  # coarse quantizer + cell links (resets churn)
        live = np.flatnonzero(self._active)
        residuals = self._residuals(self._vectors[live], self._id_cell[live])
        self._codec = PQCodec(
            num_subspaces=self.num_subspaces, kmeans_iters=self.pq_iters, seed=self.seed + 1
        ).train(residuals)
        self._codes = np.zeros((self._vectors.shape[0], self._codec.effective_subspaces), dtype=np.uint8)
        self._codes[live] = self._codec.encode(residuals)

    def _residuals(self, rows: np.ndarray, cells: np.ndarray) -> np.ndarray:
        """What the codec sees: cell residuals (default) or the raw rows."""
        if not self.residual:
            return rows
        return rows - self._centroids[cells]

    # ------------------------------------------------------------------ #
    # Persistence: on top of the IVF state, the trained codebooks and the
    # uint8 code matrix load as-is — no PQ training, no re-encode.  The
    # codec's split geometry (dim / subspaces / padded width) travels in
    # the manifest; its knobs come back through ``config()``.
    # ------------------------------------------------------------------ #
    def config(self) -> dict:
        config = super().config()
        config.update(
            num_subspaces=self.num_subspaces,
            pq_iters=self.pq_iters,
            residual=self.residual,
            refine_factor=self.refine_factor,
        )
        return config

    def _snapshot_arrays(self) -> dict[str, np.ndarray]:
        arrays = super()._snapshot_arrays()
        arrays.update(pq_codes=self._codes, pq_codebooks=self._codec.codebooks)
        return arrays

    def _snapshot_state(self) -> dict:
        state = super()._snapshot_state()
        state.update(
            pq_dim=int(self._codec.dim),
            pq_subspaces=int(self._codec._subspaces),
            pq_dsub=int(self._codec._dsub),
        )
        return state

    def _restore(self, arrays: dict[str, np.ndarray], state: dict) -> None:
        super()._restore(arrays, state)
        codec = PQCodec(
            num_subspaces=self.num_subspaces, kmeans_iters=self.pq_iters, seed=self.seed + 1
        )
        codec.codebooks = arrays["pq_codebooks"]
        codec.dim = int(state["pq_dim"])
        codec._subspaces = int(state["pq_subspaces"])
        codec._dsub = int(state["pq_dsub"])
        self._codec = codec
        self._codes = arrays["pq_codes"]

    def _promote(self) -> None:
        # Upserts and the maintenance re-encode write ``_codes`` rows in
        # place, and the codebook warm-retrain is an in-place Lloyd polish.
        super()._promote()
        self._codes = np.array(self._codes)
        self._codec.codebooks = np.array(self._codec.codebooks)

    # ------------------------------------------------------------------ #
    # Online maintenance
    # ------------------------------------------------------------------ #
    def _apply_growth(self, new_size: int) -> None:
        super()._apply_growth(new_size)
        grown = np.zeros((new_size, self._codes.shape[1]), dtype=np.uint8)
        grown[: self._codes.shape[0]] = self._codes
        self._codes = grown

    def _apply_upsert(self, item_ids: np.ndarray, rows: np.ndarray, was_active: np.ndarray) -> None:
        cells = nearest_centroid(rows, self._centroids)
        self._codes[item_ids] = self._codec.encode(self._residuals(rows, cells))
        self._place(item_ids, cells)
        self._note_churn(item_ids.size)

    def _run_recluster(self) -> None:
        super()._run_recluster()  # move centroids, relink cells
        live = np.flatnonzero(self._active)
        residuals = self._residuals(self._vectors[live], self._id_cell[live])
        # Codebooks warm-start from their current centroids: a bounded Lloyd
        # polish on the fresh residual distribution, then one re-encode pass.
        self._codec.retrain(
            residuals, self.recluster_iters, new_rng(self.seed + 1 + self._num_reclusters)
        )
        self._codes[live] = self._codec.encode(residuals)

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def _scan(self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self.metric == "cosine":
            # Cosine ranks cells on normalized centroids; the raw-centroid
            # coarse term is only needed under residual encoding.
            probe = self._probe_cells(queries)
            coarse = queries @ self._centroids.T if self.residual else None
        else:
            # Dot metric: the centroid scores serve double duty — cell
            # ranking for the probe AND the coarse ADC term.
            coarse = queries @ self._centroids.T
            probe = dense_top_k(coarse, min(self.nprobe, self.effective_nlist))
            if not self.residual:
                coarse = None
        # One flat (m · ksub) table per query: subspace s of code j lives at
        # column s·ksub + j, so a member's whole ADC score is m row-gathers.
        subspaces = self._codec.effective_subspaces
        ksub = self._codec.codebook_size
        flat_tables = np.ascontiguousarray(
            self._codec.lookup_tables(queries).reshape(queries.shape[0], subspaces * ksub)
        )
        if self._obs.enabled:
            self._met_adc_tables.inc(queries.shape[0])
        code_offsets = (np.arange(subspaces) * ksub).astype(np.int32)

        def adc_block(query_rows: np.ndarray, members: np.ndarray, cell: int) -> np.ndarray:
            # Gather the probing queries' tables once (a few KB each), offset
            # the cell's uint8 codes into flat-table columns (work stays
            # proportional to the members actually scanned), then one
            # ``np.take`` + accumulate per subspace over the whole cell batch
            # — vectorized across (queries × members), no per-item loops.
            tables = flat_tables[query_rows]
            codes = self._codes[members].astype(np.int32)
            codes += code_offsets
            block = np.take(tables, codes[:, 0], axis=1)
            for sub in range(1, subspaces):
                block += np.take(tables, codes[:, sub], axis=1)
            if coarse is not None:
                # q·x = q·centroid + q·residual.
                block += coarse[query_rows, cell][:, None]
            return block

        return self._scan_cells(probe, adc_block)

    def _search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        candidate_ids, candidate_scores = self._scan(queries)
        if self.refine_factor is None:
            return padded_top_k(candidate_ids, candidate_scores, k)
        rescore_ids = self._prune(candidate_ids, candidate_scores, int(np.ceil(self.refine_factor * k)))
        exact_scores = self._exact_rescore(queries, rescore_ids)
        return padded_top_k(rescore_ids, exact_scores, k)

    @staticmethod
    def _prune(candidate_ids: np.ndarray, candidate_scores: np.ndarray, rescore_k: int) -> np.ndarray:
        """The ``rescore_k`` best candidates per row by ADC score (unordered).

        A plain per-row ``argpartition``: the survivors are exactly rescored
        and deterministically re-ranked right after, so the careful
        (score, id) tie-breaking of :func:`~repro.index.topk.padded_top_k`
        would be wasted work here — ADC scores are a means of *selection*,
        never part of the returned ranking.
        """
        width = candidate_ids.shape[1]
        if rescore_k >= width:
            return candidate_ids
        keep = np.argpartition(-candidate_scores, rescore_k - 1, axis=1)[:, :rescore_k]
        return np.take_along_axis(candidate_ids, keep, axis=1)

    def _exact_rescore(self, queries: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """True stored-vector scores for the re-ranked candidates (chunked)."""
        scores = np.full(ids.shape, PAD_SCORE, dtype=np.float64)
        safe_ids = np.where(ids == PAD_ID, 0, ids)
        width = ids.shape[1]
        if width == 0:
            return scores
        rows_per_chunk = max(1, REFINE_CHUNK_ELEMENTS // max(1, width * self._vectors.shape[1]))
        for start in range(0, ids.shape[0], rows_per_chunk):
            block = slice(start, start + rows_per_chunk)
            # Gather the candidate rows, then a batched BLAS mat·vec — faster
            # than a generic einsum over the gathered operand.
            gathered = self._vectors[safe_ids[block]]
            scores[block] = np.matmul(gathered, queries[block][:, :, None])[:, :, 0]
        scores[ids == PAD_ID] = PAD_SCORE
        return scores
