"""Candidate retrieval: approximate nearest-neighbour indexes over the catalogue.

Full-catalogue scoring is O(users × items × dim) per request; at serving
scale a retrieval stage first narrows each user to ``candidate_k`` plausible
items and only those are exactly rescored, filtered and ranked.  This package
provides that stage as three interchangeable backends behind one interface:

* :class:`~repro.index.exact.ExactIndex` — brute-force matmul scan; exact,
  and the correctness oracle for everything else.
* :class:`~repro.index.ivf.IVFIndex` — k-means inverted file with
  ``nprobe``-cell probing; the workhorse latency win (scan a few percent of
  the catalogue per query).
* :class:`~repro.index.lsh.LSHIndex` — multi-table random-hyperplane
  signatures with Hamming-ball probing; build is cheap and
  data-independent, good under frequent rebuilds.
* :class:`~repro.index.pq.IVFPQIndex` — product-quantized inverted lists
  (uint8 codes, per-query ADC lookup tables, exact re-ranking); the
  memory-bound-catalogue backend, scanning ~8×dim/num_subspaces less
  memory per probed item than the flat IVF scan.

All backends speak dot-product and cosine metrics, fold optional item biases
into the dot metric, pad with ``-1`` / ``-inf`` when a query reaches fewer
than ``k`` items, and break score ties by ascending item id — the library's
universal ranking convention.  They also absorb catalogue churn online:
``upsert``/``delete`` edit the built structures in place (nearest-cell
inserts and tombstones for IVF, signature splices for LSH, row swaps for
the exact scan) instead of paying a full rebuild per change, and
:class:`~repro.index.monitor.RecallMonitor` shadow-rescores a sample of
served traffic against the exact oracle so retrieval-quality drift is
measured, not assumed.

Built indexes persist: every backend ``save``\\ s into a crash-safe
manifest + ``.npy`` bundle and ``load``\\ s back **without re-running any
training** — with ``mmap=True`` the payloads are memory-mapped read-only,
so a serving worker attaches to a multi-gigabyte snapshot in O(1) and the
first mutation promotes to private copies (copy-on-write).
:class:`~repro.index.snapshot.SnapshotStore` stacks monotonic versioning
and an atomically-flipped ``CURRENT`` pointer on top, so a maintainer
process publishes re-clustered indexes while serving processes hot-swap
between requests.  Pick a backend by name through
:func:`~repro.index.registry.build_index`, measure it with
:func:`~repro.index.recall.recall_at_k`, and hand it to
:class:`~repro.serving.RecommendationService` via ``index=``::

    from repro.index import ExactIndex, IVFIndex, build_index, recall_at_k

    index = IVFIndex(nprobe=16).build(model.factorized_representations())
    ids, scores = index.search(queries, k=100)
    print(recall_at_k(index, ExactIndex().build(model.factorized_representations()),
                      queries, k=100))
"""

from repro.index.base import METRICS, ItemIndex
from repro.index.exact import ExactIndex
from repro.index.ivf import IVFIndex
from repro.index.lsh import LSHIndex
from repro.index.monitor import MonitorStats, RecallMonitor
from repro.index.pq import IVFPQIndex, PQCodec
from repro.index.recall import recall_at_k
from repro.index.registry import INDEX_REGISTRY, build_index, list_index_names, register_index
from repro.index.snapshot import SnapshotStore
from repro.index.topk import PAD_ID, PAD_SCORE, dense_top_k, padded_top_k

__all__ = [
    "ExactIndex",
    "INDEX_REGISTRY",
    "IVFIndex",
    "IVFPQIndex",
    "ItemIndex",
    "LSHIndex",
    "METRICS",
    "MonitorStats",
    "PAD_ID",
    "PAD_SCORE",
    "PQCodec",
    "RecallMonitor",
    "SnapshotStore",
    "build_index",
    "dense_top_k",
    "list_index_names",
    "padded_top_k",
    "recall_at_k",
    "register_index",
]
