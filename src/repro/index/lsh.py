"""Random-hyperplane LSH with multi-table Hamming-ball probing.

Each of ``num_tables`` hash tables draws ``num_bits`` random hyperplanes and
maps every item to the packed sign pattern of its projections — items with a
small angle to each other collide with high probability (sign-random-
projection LSH, which approximates angular/cosine similarity; dot-product
queries work well when item norms are comparable, and the bias column of the
augmented representation simply becomes one more projected coordinate).

A query gathers the union of its buckets across tables — plus, when
``hamming_radius >= 1``, the buckets whose signature differs in up to that
many bits, which sharply raises recall for signatures that straddle a
hyperplane — dedups the union, rescans the survivors exactly, and selects
top-K with the library's deterministic tie-break.  Buckets are stored as a
signature-sorted permutation per table, so a bucket lookup is one
``searchsorted`` range, vectorized across every (query, probe) pair.

Online maintenance recomputes only the touched signatures: an upsert hashes
the new rows against the fixed hyperplanes and splices each table's sorted
arrays (one ``np.delete`` for replaced entries, one ``np.insert`` for the
new ones — O(table size) memmoves, versus re-hashing the whole catalogue on
a rebuild), and a delete removes the ids' entries outright, so a bucket
emptied by deletes is simply a zero-width ``searchsorted`` range that
Hamming-ball probing skips.  The hyperplanes themselves never move, so
retrieval quality is unaffected by churn.

The Hamming-ball XOR masks depend only on ``(num_bits, radius)``, so they
are computed once per combination and shared process-wide
(:func:`hamming_ball_masks`) instead of being re-enumerated on every
rebuild; looking them up at search time also means ``hamming_radius`` can
be raised or lowered between requests (the monitor-driven auto-tuner does)
without touching the built tables.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.index.base import ItemIndex
from repro.index.registry import register_index
from repro.index.topk import PAD_ID, PAD_SCORE, padded_top_k
from repro.utils.rng import new_rng

__all__ = ["LSHIndex", "hamming_ball_masks"]

#: Cache of Hamming-ball XOR masks keyed by ``(num_bits, radius)``; the
#: arrays are marked read-only because every instance shares them.
_PROBE_MASK_CACHE: dict[tuple[int, int], np.ndarray] = {}


def hamming_ball_masks(num_bits: int, radius: int) -> np.ndarray:
    """XOR masks of every signature within ``radius`` bit flips (cached).

    The enumeration is ``sum_{r<=radius} C(num_bits, r)`` masks, identity
    first; it depends only on the two integers, so rebuilt and re-spliced
    indexes (and every table of every instance) reuse one shared, read-only
    array per combination.
    """
    if not 1 <= num_bits <= 62:
        raise ValueError(f"num_bits must lie in [1, 62], got {num_bits}")
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    radius = min(radius, num_bits)
    key = (int(num_bits), int(radius))
    cached = _PROBE_MASK_CACHE.get(key)
    if cached is None:
        masks = [np.int64(0)]
        for r in range(1, radius + 1):
            for bits in combinations(range(num_bits), r):
                masks.append(np.int64(sum(1 << bit for bit in bits)))
        cached = np.array(masks, dtype=np.int64)
        cached.setflags(write=False)
        _PROBE_MASK_CACHE[key] = cached
    return cached


@register_index("lsh")
class LSHIndex(ItemIndex):
    """Multi-table random-hyperplane (sign) LSH.

    Parameters
    ----------
    metric:
        ``"dot"`` or ``"cosine"`` (see :class:`~repro.index.base.ItemIndex`).
    num_tables:
        independent hash tables; the candidate set is the union of one
        bucket (plus Hamming neighbours) per table.
    num_bits:
        hyperplanes per table.  More bits → smaller buckets → fewer
        candidates per probe but lower per-bucket recall.
    hamming_radius:
        probe every bucket within this Hamming distance of the query's
        signature (``0`` = only the exact bucket).  The number of probed
        buckets per table is ``sum_{r<=radius} C(num_bits, r)``.  Mutable
        between searches — the monitor-driven auto-tuner adjusts it live.
    seed:
        seed of the hyperplane draws.
    dtype:
        working dtype of the stored vectors / rescoring matmuls (see
        :class:`~repro.index.base.ItemIndex`).
    """

    name = "lsh"

    def __init__(
        self,
        metric: str = "dot",
        num_tables: int = 8,
        num_bits: int = 12,
        hamming_radius: int = 1,
        seed: int = 0,
        dtype: "str | np.dtype | None" = None,
    ) -> None:
        super().__init__(metric=metric, dtype=dtype)
        if num_tables <= 0:
            raise ValueError(f"num_tables must be positive, got {num_tables}")
        if not 1 <= num_bits <= 62:
            raise ValueError(f"num_bits must lie in [1, 62], got {num_bits}")
        if hamming_radius < 0:
            raise ValueError(f"hamming_radius must be non-negative, got {hamming_radius}")
        self.num_tables = num_tables
        self.num_bits = num_bits
        self.hamming_radius = min(hamming_radius, num_bits)
        self.seed = seed
        self._planes: np.ndarray | None = None  # (num_tables, d, num_bits)
        self._sorted_signatures: list[np.ndarray] | None = None  # per table
        self._permutations: list[np.ndarray] | None = None  # per table

    @property
    def effective_num_bits(self) -> int:
        """Bits per table actually used by the last build (0 before any).

        ``num_bits`` is clamped at build time so the *average* bucket keeps
        at least ~4 items (``floor(log2(num_items / 4))`` bits): on a small
        catalogue the requested bit width would make every bucket a
        singleton and starve the candidate sets.
        """
        return 0 if self._planes is None else int(self._planes.shape[2])

    def _build(self) -> None:
        live = np.flatnonzero(self._active)
        rng = new_rng(self.seed)
        num_bits = min(self.num_bits, max(1, int(np.log2(max(live.size, 2) / 4.0))))
        # Planes in the working dtype so the projection matmul runs there too.
        self._planes = rng.normal(size=(self.num_tables, self._vectors.shape[1], num_bits)).astype(
            self._vectors.dtype, copy=False
        )
        self._sorted_signatures = []
        self._permutations = []
        vectors = self._vectors[live]
        for table in range(self.num_tables):
            signatures = _pack_signs(vectors @ self._planes[table])
            order = np.argsort(signatures, kind="stable")
            self._permutations.append(live[order].astype(np.int64, copy=False))
            self._sorted_signatures.append(signatures[order])

    # ------------------------------------------------------------------ #
    # Persistence: the hyperplanes plus every table's signature-sorted
    # arrays load as-is — no re-hashing of the catalogue.  Each live id
    # appears exactly once per table, so the per-table arrays share one
    # length and stack into plain ``(num_tables, live)`` matrices.  The
    # splice-based mutation paths *replace* table arrays (``np.delete`` /
    # ``np.insert`` allocate fresh ones), so mapped rows need no
    # copy-on-write promotion — they are simply dropped on first mutation.
    # ------------------------------------------------------------------ #
    def config(self) -> dict:
        config = super().config()
        config.update(
            num_tables=self.num_tables,
            num_bits=self.num_bits,
            hamming_radius=self.hamming_radius,
            seed=self.seed,
        )
        return config

    def _snapshot_arrays(self) -> dict[str, np.ndarray]:
        return {
            "lsh_planes": self._planes,
            "lsh_signatures": np.stack(self._sorted_signatures),
            "lsh_permutations": np.stack(self._permutations),
        }

    def _restore(self, arrays: dict[str, np.ndarray], state: dict) -> None:
        self._planes = arrays["lsh_planes"]
        self._sorted_signatures = [arrays["lsh_signatures"][table] for table in range(self.num_tables)]
        self._permutations = [arrays["lsh_permutations"][table] for table in range(self.num_tables)]

    # ------------------------------------------------------------------ #
    # Online maintenance
    # ------------------------------------------------------------------ #
    def _apply_upsert(self, item_ids: np.ndarray, rows: np.ndarray, was_active: np.ndarray) -> None:
        replaced = item_ids[was_active]
        for table in range(self.num_tables):
            new_signatures = _pack_signs(rows @ self._planes[table])
            sorted_signatures = self._sorted_signatures[table]
            permutation = self._permutations[table]
            if replaced.size:
                positions = self._entry_positions(table, replaced)
                sorted_signatures = np.delete(sorted_signatures, positions)
                permutation = np.delete(permutation, positions)
            # Equal-position inserts land in batch order, so the batch itself
            # must be signature-sorted for the spliced array to stay sorted.
            batch_order = np.argsort(new_signatures, kind="stable")
            batch_signatures = new_signatures[batch_order]
            insert_at = np.searchsorted(sorted_signatures, batch_signatures, side="left")
            self._sorted_signatures[table] = np.insert(sorted_signatures, insert_at, batch_signatures)
            self._permutations[table] = np.insert(permutation, insert_at, item_ids[batch_order])

    def _apply_delete(self, item_ids: np.ndarray) -> None:
        for table in range(self.num_tables):
            positions = self._entry_positions(table, item_ids)
            self._sorted_signatures[table] = np.delete(self._sorted_signatures[table], positions)
            self._permutations[table] = np.delete(self._permutations[table], positions)

    def _entry_positions(self, table: int, item_ids: np.ndarray) -> np.ndarray:
        """Positions of the given (live) ids in one table's sorted arrays.

        Every live id appears exactly once per table, so inverting the
        permutation with one scatter answers the whole batch — O(table)
        vectorized work instead of a per-id bucket scan.
        """
        permutation = self._permutations[table]
        position_of = np.empty(self._vectors.shape[0], dtype=np.int64)
        position_of[permutation] = np.arange(permutation.size, dtype=np.int64)
        return position_of[item_ids]

    # ------------------------------------------------------------------ #
    def _search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        num_queries = queries.shape[0]
        # Masks come from the shared per-(num_bits, radius) cache, looked up
        # at search time so a live hamming_radius change takes effect now.
        probe_masks = hamming_ball_masks(
            self.effective_num_bits, min(self.hamming_radius, self.effective_num_bits)
        )
        # Probe signatures for every (query, table, mask) triple at once.
        query_signatures = np.stack(
            [_pack_signs(queries @ self._planes[table]) for table in range(self.num_tables)]
        )  # (num_tables, num_queries)
        probes = query_signatures[:, :, None] ^ probe_masks[None, None, :]
        starts = np.empty_like(probes)
        ends = np.empty_like(probes)
        for table in range(self.num_tables):
            starts[table] = np.searchsorted(self._sorted_signatures[table], probes[table], side="left")
            ends[table] = np.searchsorted(self._sorted_signatures[table], probes[table], side="right")
        # Gather each query's candidate union (ragged) and rescore exactly.
        per_query_ids: list[np.ndarray] = []
        for query in range(num_queries):
            chunks = [
                self._permutations[table][starts[table, query, probe] : ends[table, query, probe]]
                for table in range(self.num_tables)
                for probe in range(probe_masks.size)
            ]
            union = np.unique(np.concatenate(chunks)) if chunks else np.empty(0, dtype=np.int64)
            per_query_ids.append(union)
        # Rescore per query: measured faster than both a padded batched
        # einsum (bucket-size skew makes padding dominate) and a flat
        # all-pairs einsum (the (total, d) gathers thrash cache) — each
        # per-query matmul touches a few thousand contiguous-gathered rows.
        max_candidates = max((ids.size for ids in per_query_ids), default=0)
        candidate_ids = np.full((num_queries, max_candidates), PAD_ID, dtype=np.int64)
        candidate_scores = np.full((num_queries, max_candidates), PAD_SCORE, dtype=np.float64)
        for query, ids in enumerate(per_query_ids):
            if ids.size:
                candidate_ids[query, : ids.size] = ids
                candidate_scores[query, : ids.size] = self._vectors[ids] @ queries[query]
        return padded_top_k(candidate_ids, candidate_scores, k)


def _pack_signs(projections: np.ndarray) -> np.ndarray:
    """Pack the sign pattern of ``(rows, num_bits)`` projections into int64."""
    bits = (projections > 0).astype(np.int64)
    weights = (np.int64(1) << np.arange(bits.shape[1], dtype=np.int64))
    return bits @ weights
