"""Ranking metrics.

All metrics operate on a single ranking task in the leave-one-out setting:
one positive item scored against a list of sampled negatives.  The helpers
take either the rank of the positive (0-based) or raw score arrays and are
averaged over users by the evaluator.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rank_of_positive",
    "hit_ratio_at_k",
    "ndcg_at_k",
    "mean_reciprocal_rank",
    "precision_at_k",
    "recall_at_k",
    "average_precision_at_k",
]


def rank_of_positive(positive_score: float, negative_scores: np.ndarray) -> int:
    """0-based rank of the positive among ``negatives + positive``.

    Ties are broken pessimistically (a tie counts as the negative being
    ranked above the positive), so a model emitting constant scores gets the
    worst possible — not a lucky — rank.  This avoids metric inflation from
    degenerate models.
    """
    negative_scores = np.asarray(negative_scores, dtype=np.float64)
    return int(np.sum(negative_scores >= positive_score))


def hit_ratio_at_k(rank: int, k: int = 10) -> float:
    """1.0 if the positive lands in the top ``k`` positions, else 0.0."""
    _validate_k(k)
    return 1.0 if rank < k else 0.0


def ndcg_at_k(rank: int, k: int = 10) -> float:
    """NDCG@k for a single relevant item: ``1 / log2(rank + 2)`` if it hits.

    With exactly one relevant item the ideal DCG is 1, so NDCG reduces to the
    discounted gain of the hit position.
    """
    _validate_k(k)
    if rank >= k:
        return 0.0
    return float(1.0 / np.log2(rank + 2))


def mean_reciprocal_rank(rank: int) -> float:
    """Reciprocal rank ``1 / (rank + 1)`` (no cutoff)."""
    return float(1.0 / (rank + 1))


def precision_at_k(rank: int, k: int = 10) -> float:
    """Precision@k with a single relevant item: ``1/k`` on a hit, else 0."""
    _validate_k(k)
    return 1.0 / k if rank < k else 0.0


def recall_at_k(rank: int, k: int = 10) -> float:
    """Recall@k with a single relevant item equals the hit ratio."""
    return hit_ratio_at_k(rank, k)


def average_precision_at_k(rank: int, k: int = 10) -> float:
    """AP@k with a single relevant item: ``1 / (rank + 1)`` on a hit, else 0."""
    _validate_k(k)
    return float(1.0 / (rank + 1)) if rank < k else 0.0


def _validate_k(k: int) -> None:
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
