"""Beyond-accuracy metrics for recommendation lists.

Accuracy metrics (HR/NDCG) say whether the held-out item is found; these
metrics describe the *recommendation lists themselves* — how much of the
catalogue they use, how popular/novel the recommended items are and how
diverse each list is across categories.  They are computed on the output of
:class:`repro.serving.RecommendationService` (see
:meth:`~repro.serving.RecommendResponse.item_lists`, or any iterable of
item-id lists) and are used by the extension analyses, not by the paper's
tables.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "catalog_coverage",
    "average_popularity",
    "novelty",
    "intra_list_category_diversity",
    "gini_index",
]


def _as_lists(recommendations: Iterable[Sequence[int]]) -> list[list[int]]:
    lists = [[int(item) for item in items] for items in recommendations]
    if not lists:
        raise ValueError("at least one recommendation list is required")
    return lists


def catalog_coverage(recommendations: Iterable[Sequence[int]], num_items: int) -> float:
    """Fraction of the catalogue that appears in at least one list."""
    if num_items <= 0:
        raise ValueError(f"num_items must be positive, got {num_items}")
    lists = _as_lists(recommendations)
    recommended = {item for items in lists for item in items}
    return len(recommended) / num_items


def average_popularity(recommendations: Iterable[Sequence[int]], item_popularity: np.ndarray) -> float:
    """Mean training popularity (interaction count) of recommended items."""
    item_popularity = np.asarray(item_popularity, dtype=np.float64)
    lists = _as_lists(recommendations)
    values = [item_popularity[item] for items in lists for item in items]
    return float(np.mean(values)) if values else 0.0


def novelty(recommendations: Iterable[Sequence[int]], item_popularity: np.ndarray) -> float:
    """Mean self-information ``-log2 p(item)`` of recommended items.

    ``p(item)`` is the item's share of all training interactions; recommending
    only blockbusters gives low novelty, recommending long-tail items gives
    high novelty.  Items never interacted with in training are assigned the
    probability of a single interaction so the quantity stays finite.
    """
    item_popularity = np.asarray(item_popularity, dtype=np.float64)
    total = item_popularity.sum()
    if total <= 0:
        raise ValueError("item_popularity must contain at least one interaction")
    lists = _as_lists(recommendations)
    probabilities = np.maximum(item_popularity, 1.0) / total
    values = [-np.log2(probabilities[item]) for items in lists for item in items]
    return float(np.mean(values)) if values else 0.0


def intra_list_category_diversity(
    recommendations: Iterable[Sequence[int]], item_category: np.ndarray
) -> float:
    """Mean fraction of distinct categories within each recommendation list.

    1.0 means every recommended item in a list has a different category;
    ``1/len(list)`` means the list is a single category.  Lists with fewer
    than two items count as fully diverse.
    """
    item_category = np.asarray(item_category, dtype=np.int64)
    lists = _as_lists(recommendations)
    ratios = []
    for items in lists:
        if len(items) < 2:
            ratios.append(1.0)
            continue
        categories = {int(item_category[item]) for item in items}
        ratios.append(len(categories) / len(items))
    return float(np.mean(ratios))


def gini_index(recommendations: Iterable[Sequence[int]], num_items: int) -> float:
    """Gini index of how recommendations concentrate on few items.

    0 means every catalogue item is recommended equally often; values close
    to 1 mean a handful of items dominate all lists.
    """
    if num_items <= 0:
        raise ValueError(f"num_items must be positive, got {num_items}")
    lists = _as_lists(recommendations)
    counts = np.zeros(num_items, dtype=np.float64)
    for items in lists:
        for item in items:
            counts[item] += 1.0
    total = counts.sum()
    if total == 0:
        return 0.0
    sorted_counts = np.sort(counts)
    cumulative = np.cumsum(sorted_counts) / total
    # Standard discrete Gini formulation over the item axis.
    return float(1.0 - 2.0 * np.trapezoid(cumulative, dx=1.0 / num_items))
