"""The Figure-3 case study: scene-based attention vs. prediction score.

The paper picks a user, looks at candidate items and shows that candidates
whose categories share more scenes with the user's interacted items receive
both a larger *average scene-based attention score* and a larger prediction
score ("the average attention score does relate to the prediction result").

:func:`run_case_study` reproduces that analysis for a trained SceneRec model:
for each candidate it reports the model's prediction, the average attention
(cosine similarity of summed scene embeddings, Eq. 10) against the user's
history, and the number of shared scenes in the graph, plus the rank
correlation between attention and prediction across candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.autograd.tensor import no_grad
from repro.graph.scene_graph import SceneBasedGraph
from repro.models.scenerec import SceneRec

__all__ = ["CandidateInsight", "CaseStudyReport", "run_case_study"]


@dataclass(frozen=True)
class CandidateInsight:
    """Per-candidate numbers shown in Figure 3."""

    item: int
    category: int
    prediction_score: float
    average_attention: float
    average_shared_scenes: float
    is_positive: bool


@dataclass(frozen=True)
class CaseStudyReport:
    """The full case study for one user."""

    user: int
    history_items: np.ndarray
    candidates: list[CandidateInsight]
    #: Spearman rank correlation between attention and prediction over candidates
    attention_prediction_correlation: float

    def sorted_by_prediction(self) -> list[CandidateInsight]:
        return sorted(self.candidates, key=lambda insight: insight.prediction_score, reverse=True)

    def format(self) -> str:
        """Human-readable rendering, analogous to the Figure-3 annotation."""
        lines = [
            f"Case study for user {self.user} ({self.history_items.size} interacted items)",
            f"Spearman(attention, prediction) = {self.attention_prediction_correlation:+.3f}",
            f"{'item':>8} {'category':>9} {'score':>8} {'avg-att':>8} {'shared-scenes':>13} {'positive':>8}",
        ]
        for insight in self.sorted_by_prediction():
            lines.append(
                f"{insight.item:>8} {insight.category:>9} {insight.prediction_score:>8.3f} "
                f"{insight.average_attention:>8.3f} {insight.average_shared_scenes:>13.2f} "
                f"{str(insight.is_positive):>8}"
            )
        return "\n".join(lines)


def run_case_study(
    model: SceneRec,
    scene_graph: SceneBasedGraph,
    user: int,
    history_items: np.ndarray,
    candidate_items: np.ndarray,
    positive_items: set[int] | None = None,
) -> CaseStudyReport:
    """Compute the Figure-3 quantities for one user.

    Parameters
    ----------
    model:
        a trained :class:`SceneRec` (the scene hierarchy must be enabled).
    scene_graph:
        the scene-based graph, used to count shared scenes exactly.
    user:
        the user id.
    history_items:
        items the user interacted with in training.
    candidate_items:
        items to score and explain (typically the held-out positive plus
        sampled negatives).
    positive_items:
        optional ground-truth positives among the candidates, only used to
        flag rows in the report.
    """
    history_items = np.asarray(history_items, dtype=np.int64)
    candidate_items = np.asarray(candidate_items, dtype=np.int64)
    if history_items.size == 0:
        raise ValueError("the case study needs a non-empty user history")
    if candidate_items.size < 2:
        raise ValueError("the case study needs at least two candidate items")
    positive_items = positive_items or set()

    model.eval()
    with no_grad():
        users = np.full(candidate_items.size, user, dtype=np.int64)
        predictions = model.score(users, candidate_items)

        insights: list[CandidateInsight] = []
        for candidate, prediction in zip(candidate_items, predictions):
            attention_scores = [model.scene_attention_score(int(candidate), int(item)) for item in history_items]
            shared = [
                scene_graph.shared_scenes(
                    scene_graph.category_of(int(candidate)), scene_graph.category_of(int(item))
                ).size
                for item in history_items
            ]
            insights.append(
                CandidateInsight(
                    item=int(candidate),
                    category=scene_graph.category_of(int(candidate)),
                    prediction_score=float(prediction),
                    average_attention=float(np.mean(attention_scores)),
                    average_shared_scenes=float(np.mean(shared)),
                    is_positive=int(candidate) in positive_items,
                )
            )

    attention = np.array([insight.average_attention for insight in insights])
    prediction = np.array([insight.prediction_score for insight in insights])
    if np.allclose(attention, attention[0]) or np.allclose(prediction, prediction[0]):
        correlation = 0.0
    else:
        correlation = float(scipy_stats.spearmanr(attention, prediction).statistic)

    return CaseStudyReport(
        user=int(user),
        history_items=history_items,
        candidates=insights,
        attention_prediction_correlation=correlation,
    )
