"""Full-catalogue ranking evaluation.

The paper evaluates with sampled negatives (1 positive vs. 100 sampled
unobserved items).  Sampled-negative evaluation is fast but is known to bias
comparisons between models; this module adds the stricter protocol used by
much of the follow-up literature: every held-out positive is ranked against
the *entire* catalogue, excluding the user's training items.

It reuses the same :class:`~repro.data.splits.LeaveOneOutSplit` and the same
per-rank metrics, so the two protocols can be compared side by side on any
model that implements :meth:`repro.models.base.Recommender.score`.

Scoring goes through :func:`repro.models.base.compute_score_matrix`, so
factorized models answer each user batch with a single catalogue matmul while
pairwise-only models transparently fall back to batched tiling.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import no_grad
from repro.data.splits import LeaveOneOutSplit
from repro.evaluation.evaluator import EvaluationResult
from repro.evaluation.metrics import hit_ratio_at_k, mean_reciprocal_rank, ndcg_at_k, rank_of_positive
from repro.models.base import FactorizedRecommender, Recommender, compute_score_matrix

__all__ = ["FullRankingEvaluator"]


class FullRankingEvaluator:
    """Rank each held-out positive against every non-training item.

    Parameters
    ----------
    split:
        the leave-one-out split; ``which`` selects its validation or test
        instances.
    k:
        metric cutoff.
    exclude_training_items:
        when True (default, the standard protocol) a user's training items
        are removed from the candidate list before ranking.
    """

    def __init__(
        self,
        split: LeaveOneOutSplit,
        which: str = "test",
        k: int = 10,
        exclude_training_items: bool = True,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if which not in ("test", "validation"):
            raise ValueError(f"which must be 'test' or 'validation', got {which!r}")
        instances = split.test if which == "test" else split.validation
        if not instances:
            raise ValueError(f"the split has no {which} instances")
        self.split = split
        self.instances = list(instances)
        self.k = k
        self.exclude_training_items = exclude_training_items
        self._train_items = split.train_user_items()

    def evaluate(self, model: Recommender, item_batch: int = 2048, user_batch: int = 64) -> EvaluationResult:
        """Return averaged metrics under the full-ranking protocol.

        ``user_batch`` instances are scored per catalogue-matrix call (one
        matmul on factorized models); on the pairwise fallback path
        ``item_batch`` additionally bounds how many (user, item) pairs are
        scored per model call so memory stays flat for large catalogues.
        """
        if item_batch <= 0:
            raise ValueError(f"item_batch must be positive, got {item_batch}")
        if user_batch <= 0:
            raise ValueError(f"user_batch must be positive, got {user_batch}")
        num_items = self.split.num_items
        ranks: list[int] = []
        was_training = getattr(model, "training", False)
        if hasattr(model, "eval"):
            model.eval()
        try:
            with no_grad():
                if isinstance(model, FactorizedRecommender):
                    # Hoist the expensive side (full-graph propagation, item
                    # encodings) out of the chunk loop: compute once, reuse
                    # for every user batch.
                    representations = model.factorized_representations()
                    if representations.num_items != num_items:
                        raise ValueError(
                            f"model factorizes over {representations.num_items} items, "
                            f"but the split has {num_items}"
                        )
                    scorer = representations.score_matrix
                else:
                    def scorer(users: np.ndarray) -> np.ndarray:
                        return compute_score_matrix(model, users, num_items=num_items, item_batch=item_batch)

                for start in range(0, len(self.instances), user_batch):
                    chunk = self.instances[start : start + user_batch]
                    users = np.array([instance.user for instance in chunk], dtype=np.int64)
                    scores = scorer(users)
                    for row, instance in enumerate(chunk):
                        row_scores = scores[row]
                        positive_score = row_scores[instance.positive_item]
                        mask = np.ones(num_items, dtype=bool)
                        mask[instance.positive_item] = False
                        if self.exclude_training_items:
                            mask[self._train_items[instance.user]] = False
                        ranks.append(rank_of_positive(positive_score, row_scores[mask]))
        finally:
            if hasattr(model, "train") and was_training:
                model.train()

        return EvaluationResult(
            ndcg=float(np.mean([ndcg_at_k(rank, self.k) for rank in ranks])),
            hit_ratio=float(np.mean([hit_ratio_at_k(rank, self.k) for rank in ranks])),
            mrr=float(np.mean([mean_reciprocal_rank(rank) for rank in ranks])),
            k=self.k,
            num_users=len(ranks),
            ranks=np.array(ranks, dtype=np.int64),
        )
