"""Leave-one-out ranking evaluator (Section 5.3)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.autograd.tensor import no_grad
from repro.data.splits import EvaluationInstance
from repro.evaluation.metrics import (
    hit_ratio_at_k,
    mean_reciprocal_rank,
    ndcg_at_k,
    rank_of_positive,
)
from repro.models.base import FactorizedRecommender, Recommender, has_matrix_fast_path

__all__ = ["EvaluationResult", "RankingEvaluator"]


@dataclass(frozen=True)
class EvaluationResult:
    """Averaged metrics over all evaluated users, plus per-user ranks."""

    ndcg: float
    hit_ratio: float
    mrr: float
    k: int
    num_users: int
    ranks: np.ndarray = field(repr=False)

    def to_dict(self) -> dict[str, float]:
        return {
            f"NDCG@{self.k}": self.ndcg,
            f"HR@{self.k}": self.hit_ratio,
            "MRR": self.mrr,
            "num_users": self.num_users,
        }

    def __str__(self) -> str:
        return f"NDCG@{self.k}={self.ndcg:.4f} HR@{self.k}={self.hit_ratio:.4f} MRR={self.mrr:.4f}"


class RankingEvaluator:
    """Score each user's held-out positive against its sampled negatives.

    The evaluator is model-agnostic: anything implementing
    :meth:`repro.models.base.Recommender.score` can be evaluated, which keeps
    the comparison across SceneRec, its ablations and every baseline exactly
    like-for-like (same candidates, same metric code).

    Models with a vectorized catalogue path (factorized models, SceneRec) are
    scored through :meth:`~repro.models.base.Recommender.score_matrix` — one
    matrix per user chunk, candidates gathered by fancy indexing — while
    pairwise-only models keep the flattened batched-pairs path.
    """

    def __init__(self, instances: Sequence[EvaluationInstance], k: int = 10) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if not instances:
            raise ValueError("evaluator needs at least one evaluation instance")
        self.instances = list(instances)
        self.k = k

    def evaluate(self, model: Recommender, batch_users: int = 64) -> EvaluationResult:
        """Evaluate ``model`` over every instance and average the metrics.

        ``batch_users`` controls how many ranking tasks are scored per model
        call; all candidates of those users are flattened into one scoring
        batch to amortise the model's forward pass.
        """
        if batch_users <= 0:
            raise ValueError(f"batch_users must be positive, got {batch_users}")
        ranks: list[int] = []
        use_matrix = has_matrix_fast_path(model)
        was_training = getattr(model, "training", False)
        if hasattr(model, "eval"):
            model.eval()
        try:
            with no_grad():
                if use_matrix and isinstance(model, FactorizedRecommender):
                    # One propagation/encoding for the whole evaluation.
                    scorer = model.factorized_representations().score_matrix
                elif use_matrix:
                    def scorer(users: np.ndarray) -> np.ndarray:
                        return np.asarray(model.score_matrix(users), dtype=np.float64)
                else:
                    scorer = None
                for start in range(0, len(self.instances), batch_users):
                    chunk = self.instances[start : start + batch_users]
                    if scorer is not None:
                        self._rank_chunk_matrix(scorer, chunk, ranks)
                    else:
                        self._rank_chunk_pairwise(model, chunk, ranks)
        finally:
            if hasattr(model, "train") and was_training:
                model.train()

        rank_array = np.array(ranks, dtype=np.int64)
        return EvaluationResult(
            ndcg=float(np.mean([ndcg_at_k(rank, self.k) for rank in ranks])),
            hit_ratio=float(np.mean([hit_ratio_at_k(rank, self.k) for rank in ranks])),
            mrr=float(np.mean([mean_reciprocal_rank(rank) for rank in ranks])),
            k=self.k,
            num_users=len(ranks),
            ranks=rank_array,
        )

    @staticmethod
    def _rank_chunk_pairwise(model: Recommender, chunk: Sequence[EvaluationInstance], ranks: list[int]) -> None:
        """Flatten all candidates of the chunk into one pairwise scoring call."""
        users: list[int] = []
        items: list[int] = []
        offsets: list[tuple[int, int]] = []
        cursor = 0
        for instance in chunk:
            candidates = instance.candidates()
            users.extend([instance.user] * candidates.size)
            items.extend(candidates.tolist())
            offsets.append((cursor, candidates.size))
            cursor += candidates.size
        scores = np.asarray(
            model.score(np.array(users, dtype=np.int64), np.array(items, dtype=np.int64)),
            dtype=np.float64,
        ).reshape(-1)
        if scores.size != cursor:
            raise ValueError(
                f"model.score returned {scores.size} scores for {cursor} (user, item) pairs"
            )
        for offset, width in offsets:
            positive_score = scores[offset]
            negative_scores = scores[offset + 1 : offset + width]
            ranks.append(rank_of_positive(positive_score, negative_scores))

    @staticmethod
    def _rank_chunk_matrix(scorer, chunk: Sequence[EvaluationInstance], ranks: list[int]) -> None:
        """Score each distinct user once against the catalogue, then gather."""
        chunk_users = np.array([instance.user for instance in chunk], dtype=np.int64)
        unique_users, rows = np.unique(chunk_users, return_inverse=True)
        matrix = np.asarray(scorer(unique_users), dtype=np.float64)
        for row, instance in zip(rows, chunk):
            candidate_scores = matrix[row, instance.candidates()]
            ranks.append(rank_of_positive(candidate_scores[0], candidate_scores[1:]))
