"""Leave-one-out ranking evaluator (Section 5.3)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.autograd.tensor import no_grad
from repro.data.splits import EvaluationInstance
from repro.evaluation.metrics import (
    hit_ratio_at_k,
    mean_reciprocal_rank,
    ndcg_at_k,
    rank_of_positive,
)
from repro.models.base import Recommender

__all__ = ["EvaluationResult", "RankingEvaluator"]


@dataclass(frozen=True)
class EvaluationResult:
    """Averaged metrics over all evaluated users, plus per-user ranks."""

    ndcg: float
    hit_ratio: float
    mrr: float
    k: int
    num_users: int
    ranks: np.ndarray = field(repr=False)

    def to_dict(self) -> dict[str, float]:
        return {
            f"NDCG@{self.k}": self.ndcg,
            f"HR@{self.k}": self.hit_ratio,
            "MRR": self.mrr,
            "num_users": self.num_users,
        }

    def __str__(self) -> str:
        return f"NDCG@{self.k}={self.ndcg:.4f} HR@{self.k}={self.hit_ratio:.4f} MRR={self.mrr:.4f}"


class RankingEvaluator:
    """Score each user's held-out positive against its sampled negatives.

    The evaluator is model-agnostic: anything implementing
    :meth:`repro.models.base.Recommender.score` can be evaluated, which keeps
    the comparison across SceneRec, its ablations and every baseline exactly
    like-for-like (same candidates, same metric code).
    """

    def __init__(self, instances: Sequence[EvaluationInstance], k: int = 10) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if not instances:
            raise ValueError("evaluator needs at least one evaluation instance")
        self.instances = list(instances)
        self.k = k

    def evaluate(self, model: Recommender, batch_users: int = 64) -> EvaluationResult:
        """Evaluate ``model`` over every instance and average the metrics.

        ``batch_users`` controls how many ranking tasks are scored per model
        call; all candidates of those users are flattened into one scoring
        batch to amortise the model's forward pass.
        """
        if batch_users <= 0:
            raise ValueError(f"batch_users must be positive, got {batch_users}")
        ranks: list[int] = []
        was_training = getattr(model, "training", False)
        if hasattr(model, "eval"):
            model.eval()
        try:
            with no_grad():
                for start in range(0, len(self.instances), batch_users):
                    chunk = self.instances[start : start + batch_users]
                    users: list[int] = []
                    items: list[int] = []
                    offsets: list[tuple[int, int]] = []
                    cursor = 0
                    for instance in chunk:
                        candidates = instance.candidates()
                        users.extend([instance.user] * candidates.size)
                        items.extend(candidates.tolist())
                        offsets.append((cursor, candidates.size))
                        cursor += candidates.size
                    scores = np.asarray(
                        model.score(np.array(users, dtype=np.int64), np.array(items, dtype=np.int64)),
                        dtype=np.float64,
                    ).reshape(-1)
                    if scores.size != cursor:
                        raise ValueError(
                            f"model.score returned {scores.size} scores for {cursor} (user, item) pairs"
                        )
                    for (offset, width), instance in zip(offsets, chunk):
                        positive_score = scores[offset]
                        negative_scores = scores[offset + 1 : offset + width]
                        ranks.append(rank_of_positive(positive_score, negative_scores))
        finally:
            if hasattr(model, "train") and was_training:
                model.train()

        rank_array = np.array(ranks, dtype=np.int64)
        return EvaluationResult(
            ndcg=float(np.mean([ndcg_at_k(rank, self.k) for rank in ranks])),
            hit_ratio=float(np.mean([hit_ratio_at_k(rank, self.k) for rank in ranks])),
            mrr=float(np.mean([mean_reciprocal_rank(rank) for rank in ranks])),
            k=self.k,
            num_users=len(ranks),
            ranks=rank_array,
        )
