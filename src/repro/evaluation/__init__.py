"""Evaluation: ranking metrics, the leave-one-out evaluator and the case study.

The paper reports HR@10 and NDCG@10 under a leave-one-out protocol with 100
sampled negatives per user (Section 5.3); :class:`RankingEvaluator` implements
exactly that, :class:`FullRankingEvaluator` adds the stricter full-catalogue
protocol, and :mod:`~repro.evaluation.case_study` reproduces the Figure-3
analysis relating scene-based attention to prediction scores.

Both evaluators score through the two-tier API of :mod:`repro.models.base`:
models with a catalogue ``score_matrix`` fast path (factorized models,
SceneRec) are ranked from one matrix per user batch, everything else falls
back to batched pairwise scoring with identical results.
"""

from repro.evaluation.beyond_accuracy import (
    average_popularity,
    catalog_coverage,
    gini_index,
    intra_list_category_diversity,
    novelty,
)
from repro.evaluation.case_study import CaseStudyReport, CandidateInsight, run_case_study
from repro.evaluation.evaluator import EvaluationResult, RankingEvaluator
from repro.evaluation.full_ranking import FullRankingEvaluator
from repro.evaluation.metrics import (
    average_precision_at_k,
    hit_ratio_at_k,
    mean_reciprocal_rank,
    ndcg_at_k,
    precision_at_k,
    rank_of_positive,
    recall_at_k,
)

__all__ = [
    "CandidateInsight",
    "CaseStudyReport",
    "EvaluationResult",
    "FullRankingEvaluator",
    "RankingEvaluator",
    "average_popularity",
    "average_precision_at_k",
    "catalog_coverage",
    "gini_index",
    "hit_ratio_at_k",
    "intra_list_category_diversity",
    "novelty",
    "mean_reciprocal_rank",
    "ndcg_at_k",
    "precision_at_k",
    "rank_of_positive",
    "recall_at_k",
    "run_case_study",
]
