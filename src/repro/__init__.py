"""SceneRec reproduction: scene-based graph neural networks for recommendation.

This package is a full, self-contained reproduction of

    Wang, Guo, Li, Yin, Ma.
    "SceneRec: Scene-Based Graph Neural Networks for Recommender Systems."
    EDBT 2021 (arXiv:2102.06401).

It ships its own neural substrate (reverse-mode autodiff on NumPy, layers,
optimisers), the two graph structures the paper defines, a synthetic
JD-like dataset generator, the SceneRec model with its three ablations, six
baseline recommenders, a shared BPR trainer, the leave-one-out evaluator, a
vectorized serving layer and an experiment harness that regenerates every
table and figure.

Quickstart
----------
Train a model, then serve ranked recommendations from it:

>>> from repro.data import generate_dataset, dataset_config, leave_one_out_split
>>> from repro.models import SceneRec, SceneRecConfig
>>> from repro.training import Trainer, TrainConfig
>>> from repro.serving import RecommendationService, RecommendRequest
>>> dataset = generate_dataset(dataset_config("electronics"))
>>> split = leave_one_out_split(dataset, num_negatives=100, rng=0)
>>> train_graph = dataset.bipartite_graph(split.train_interactions)
>>> model = SceneRec(train_graph, dataset.scene_graph(),
...                  SceneRecConfig(embedding_dim=32))
>>> history = Trainer(model, split, TrainConfig(epochs=10)).fit()
>>> service = RecommendationService(model, train_graph, dataset.scene_graph())
>>> response = service.recommend(RecommendRequest(users=(0, 1, 2), k=10,
...                                               explain=True))
>>> top = response.for_user(0)  # ranked Recommendation tuples

Models are scored through a two-tier API (:mod:`repro.models.base`):
pairwise ``score(users, items)`` for training-time protocols, and a
catalogue-wide ``score_matrix(users)`` that factorized models answer with a
single matmul — the serving layer and the full-ranking evaluator ride on the
fast tier automatically.  At catalogue scale, :mod:`repro.index` adds an ANN
candidate-retrieval stage (exact / IVF / LSH backends) in front of exact
rescoring — pass ``index="ivf"`` to the service.  The indexes absorb
catalogue churn online (``upsert``/``delete``, surfaced as
``service.refresh_items``/``delete_items``) and a
:class:`~repro.index.RecallMonitor` tracks retrieval quality on served
traffic through ``service.stats()``.

Runtime visibility comes from :mod:`repro.obs`: pass ``obs=True`` to the
service (or the trainer) and every hot path records dependency-free
counters, gauges and latency histograms plus per-request stage traces —
``service.obs.registry.render_prometheus()`` is a scrape-ready metrics
page, ``service.obs.tracer.last_trace()`` answers "where did that request's
latency go?".

Partial failure is handled by :mod:`repro.reliability`: request deadlines
that shed optional work instead of blowing the SLA, a circuit breaker that
fails the ANN path over to the exact full scan (responses come back
``degraded=True`` but never wrong), self-healing snapshot loads that
quarantine a corrupted publish and roll back to the newest verifiable
version, and named failpoints for chaos-testing all of the above.
"""

from repro import (
    autograd,
    data,
    evaluation,
    experiments,
    graph,
    index,
    models,
    nn,
    obs,
    optim,
    reliability,
    scene_mining,
    serving,
    training,
    utils,
)

__version__ = "1.7.0"

__all__ = [
    "autograd",
    "data",
    "evaluation",
    "experiments",
    "graph",
    "index",
    "models",
    "nn",
    "obs",
    "optim",
    "reliability",
    "scene_mining",
    "serving",
    "training",
    "utils",
    "__version__",
]
