"""SceneRec reproduction: scene-based graph neural networks for recommendation.

This package is a full, self-contained reproduction of

    Wang, Guo, Li, Yin, Ma.
    "SceneRec: Scene-Based Graph Neural Networks for Recommender Systems."
    EDBT 2021 (arXiv:2102.06401).

It ships its own neural substrate (reverse-mode autodiff on NumPy, layers,
optimisers), the two graph structures the paper defines, a synthetic
JD-like dataset generator, the SceneRec model with its three ablations, six
baseline recommenders, a shared BPR trainer, the leave-one-out evaluator and
an experiment harness that regenerates every table and figure.

Quickstart
----------
>>> from repro.data import generate_dataset, dataset_config, leave_one_out_split
>>> from repro.models import SceneRec, SceneRecConfig
>>> from repro.training import Trainer, TrainConfig
>>> dataset = generate_dataset(dataset_config("electronics"))
>>> split = leave_one_out_split(dataset, num_negatives=100, rng=0)
>>> model = SceneRec(dataset.bipartite_graph(split.train_interactions),
...                  dataset.scene_graph(), SceneRecConfig(embedding_dim=32))
>>> history = Trainer(model, split, TrainConfig(epochs=10)).fit()
"""

from repro import (
    autograd,
    data,
    evaluation,
    experiments,
    graph,
    models,
    nn,
    optim,
    scene_mining,
    training,
    utils,
)

__version__ = "1.0.0"

__all__ = [
    "autograd",
    "data",
    "evaluation",
    "experiments",
    "graph",
    "models",
    "nn",
    "optim",
    "scene_mining",
    "training",
    "utils",
    "__version__",
]
