"""A small reverse-mode automatic-differentiation engine on NumPy.

The paper's reference implementation would sit on PyTorch/DGL; neither is
available offline, so this package provides the minimal-but-complete tensor
library the SceneRec model family needs:

* :class:`~repro.autograd.tensor.Tensor` — a NumPy array plus gradient and a
  recorded backward function, supporting broadcasting arithmetic, matrix
  multiplication, reductions, activations, softmax, concatenation, indexing
  and embedding-style gather with scatter-add gradients.
* :mod:`~repro.autograd.functional` — free functions (``concat``, ``stack``,
  ``embedding_lookup``, ``sparse_matmul``, ``log_sigmoid``...) used by the
  neural-network layers and models.
* :mod:`~repro.autograd.grad_check` — numerical gradient checking used by the
  test-suite to validate every primitive.

The engine is deliberately dense-and-simple: graphs are built eagerly, and
``Tensor.backward()`` runs a topological sweep accumulating ``.grad`` on every
tensor with ``requires_grad=True``.
"""

from repro.autograd.functional import (
    concat,
    dropout_mask,
    embedding_lookup,
    log_sigmoid,
    masked_softmax,
    sparse_matmul,
    stack,
    where,
)
from repro.autograd.grad_check import gradient_check, numerical_gradient
from repro.autograd.sparse import RowSparseGrad
from repro.autograd.tensor import Tensor, no_grad

__all__ = [
    "RowSparseGrad",
    "Tensor",
    "concat",
    "dropout_mask",
    "embedding_lookup",
    "gradient_check",
    "log_sigmoid",
    "masked_softmax",
    "no_grad",
    "numerical_gradient",
    "sparse_matmul",
    "stack",
    "where",
]
