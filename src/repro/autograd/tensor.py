"""The :class:`Tensor` class: NumPy arrays with reverse-mode autodiff.

Design notes
------------
* Data is always stored as ``float64``; integer index arrays never become
  tensors, they stay plain NumPy arrays and are captured by closures.
* Each operation returns a new tensor whose ``_backward`` closure knows how to
  push the output gradient onto the inputs.  ``backward()`` topologically
  sorts the graph and runs the closures in reverse order.
* Broadcasting is supported by "unbroadcasting" gradients back to the input
  shape (summing over added/expanded axes).
* A module-level flag implements :func:`no_grad`, which the evaluator and the
  trainer's validation passes use to avoid building graphs.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.autograd.sparse import RowSparseGrad

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "unbroadcast"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph construction.

    Inside the context every operation still computes values, but the results
    have ``requires_grad=False`` and record no backward closures, so forward
    passes for evaluation are cheap.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting.

    Broadcasting can (a) prepend axes and (b) expand length-1 axes; the
    gradient of a broadcast input is the output gradient summed over exactly
    those axes.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were expanded from length 1.
    axes = tuple(idx for idx, size in enumerate(shape) if size == 1 and grad.shape[idx] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: "Tensor | np.ndarray | float | int | Sequence") -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A NumPy array with an optional gradient and a recorded backward rule."""

    __slots__ = (
        "data",
        "grad",
        "sparse_grad",
        "requires_grad",
        "_backward",
        "_parents",
        "_sparse_rows_enabled",
        "name",
    )
    # Make ``np.ndarray.__mul__`` etc. defer to the Tensor reflected operators.
    __array_priority__ = 100

    def __init__(
        self,
        data: "np.ndarray | float | int | Sequence | Tensor",
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self.sparse_grad: RowSparseGrad | None = None
        self._parents: tuple[Tensor, ...] = parents if self.requires_grad else ()
        self._backward = backward if self.requires_grad else None
        self._sparse_rows_enabled = False
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    def numpy(self) -> np.ndarray:
        """Return a copy of the underlying data as a plain NumPy array."""
        return self.data.copy()

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._raise_item()

    @staticmethod
    def _raise_item() -> float:
        raise ValueError("item() only works on single-element tensors")

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------ #
    # Graph construction / backward
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        parents = tuple(parents)
        requires_grad = _GRAD_ENABLED and any(parent.requires_grad for parent in parents)
        return Tensor(data, requires_grad=requires_grad, parents=parents, backward=backward)

    def enable_sparse_grad(self, enabled: bool = True) -> "Tensor":
        """Opt this tensor into row-sparse gradient recording.

        When enabled, row gathers (:meth:`take_rows` — the embedding lookup
        primitive — and equivalently indexing with a non-negative integer
        array, ``table[idx]``) accumulate their backward contribution as a
        :class:`~repro.autograd.sparse.RowSparseGrad` in ``sparse_grad``
        instead of scattering into a dense ``grad`` array.  At most one of
        ``grad`` / ``sparse_grad`` is ever set: a dense contribution folds
        any pending sparse gradient into ``grad``, and sparse contributions
        scatter into ``grad`` once it exists — so mixed dense/sparse graphs
        stay exact and optimisers see exactly one gradient form.
        """
        self._sparse_rows_enabled = bool(enabled)
        return self

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.sparse_grad is not None:
            dense = self.sparse_grad.to_dense()
            self.grad = dense if self.grad is None else self.grad + dense
            self.sparse_grad = None
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def _accumulate_rows(self, indices: np.ndarray, rows: np.ndarray) -> None:
        """Accumulate a row-sparse contribution (see :meth:`enable_sparse_grad`)."""
        if self.grad is not None:
            # Rebind rather than mutate: like _accumulate, never modify a
            # grad array a caller may still hold a reference to.
            grad = self.grad.copy()
            np.add.at(grad, indices, rows)
            self.grad = grad
            return
        if not self._sparse_rows_enabled:
            full = np.zeros_like(self.data)
            np.add.at(full, indices, rows)
            self._accumulate(full)
            return
        if self.sparse_grad is None:
            self.sparse_grad = RowSparseGrad(self.data.shape, indices, rows)
        else:
            self.sparse_grad.append(indices, rows)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient (dense and row-sparse)."""
        self.grad = None
        self.sparse_grad = None

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones, which only makes sense for scalar outputs;
        callers backpropagating from non-scalar tensors must pass an explicit
        output gradient of the same shape.
        """
        if not self.requires_grad:
            raise RuntimeError("cannot call backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient argument needs a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(np.float64)

        ordered: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        # Iterative DFS for a topological order (recursion would overflow on
        # deep MLP/GNN graphs).
        while stack:
            node, processed = stack.pop()
            if processed:
                ordered.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(ordered):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(grad)

        return Tensor._make(out_data, (self, other_t), backward)

    def __radd__(self, other: "float | np.ndarray") -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(-grad)

        return Tensor._make(out_data, (self, other_t), backward)

    def __rsub__(self, other: "float | np.ndarray") -> "Tensor":
        return Tensor(_as_array(other)).__sub__(self)

    def __mul__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other_t), backward)

    def __rmul__(self, other: "float | np.ndarray") -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(-grad * self.data / (other_t.data**2))

        return Tensor._make(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: "float | np.ndarray") -> "Tensor":
        return Tensor(_as_array(other)).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    self._accumulate(np.outer(grad, other_t.data) if grad.ndim == 1 else grad[..., None] * other_t.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other_t.data, -1, -2))
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    other_t._accumulate(np.outer(self.data, grad) if grad.ndim == 1 else self.data[..., None] @ grad[..., None, :])
                else:
                    other_t._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._make(out_data, (self, other_t), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(ax % self.data.ndim for ax in axes)
                for ax in sorted(axes):
                    expanded = np.expand_dims(expanded, ax)
            self._accumulate(np.broadcast_to(expanded, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[ax] for ax in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> np.ndarray:
        """Plain (non-differentiable) max, used for numerically stable softmax."""
        return self.data.max(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # Elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def sigmoid(self) -> "Tensor":
        # Numerically stable: compute via exp of the negative magnitude.
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, 0, None))),
            np.exp(np.clip(self.data, None, 0)) / (1.0 + np.exp(np.clip(self.data, None, 0))),
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        scale = np.where(self.data > 0, 1.0, negative_slope)
        out_data = self.data * scale

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * scale)

        return Tensor._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inner = (grad * out_data).sum(axis=axis, keepdims=True)
                self._accumulate(out_data * (grad - inner))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, minimum: float | None = None, maximum: float | None = None) -> "Tensor":
        out_data = np.clip(self.data, minimum, maximum)
        mask = np.ones_like(self.data)
        if minimum is not None:
            mask = mask * (self.data >= minimum)
        if maximum is not None:
            mask = mask * (self.data <= maximum)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)
        if axes is None:
            inverse: tuple[int, ...] | None = None
        else:
            inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(out_data, (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.squeeze(grad, axis=axis))

        return Tensor._make(out_data, (self,), backward)

    def squeeze(self, axis: int | None = None) -> "Tensor":
        original_shape = self.data.shape
        out_data = np.squeeze(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index: object) -> "Tensor":
        # A plain integer-array index is an axis-0 row gather — exactly
        # take_rows — so route it there: the backward then records row-sparse
        # contributions when enable_sparse_grad() is on, instead of always
        # scattering into a dense zeros_like(self.data) table.  Negative
        # indices stay on the dense path (row -1 and row n-1 must coalesce
        # to the same row, which the sparse form does not normalise).
        if isinstance(index, (np.ndarray, list)):
            gather = np.asarray(index)
            if gather.dtype.kind in "iu" and (gather.size == 0 or gather.min() >= 0):
                return self.take_rows(gather)
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Differentiable row gather (embedding lookup) along axis 0.

        ``indices`` may have any shape; the result has shape
        ``indices.shape + self.shape[1:]`` and gradients are scatter-added
        back into the source rows (duplicated indices accumulate).
        """
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_rows(
                    indices.reshape(-1), grad.reshape(-1, *self.data.shape[1:])
                )

        return Tensor._make(out_data, (self,), backward)
