"""Free functions on tensors used by layers and models.

These complement the :class:`~repro.autograd.tensor.Tensor` methods with
operations that involve several tensors (``concat``, ``stack``), fixed sparse
operands (``sparse_matmul``), integer index arrays (``embedding_lookup``) or
numerically delicate compositions (``log_sigmoid``, ``masked_softmax``,
``cosine_similarity``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.autograd.tensor import Tensor

__all__ = [
    "concat",
    "stack",
    "embedding_lookup",
    "sparse_matmul",
    "log_sigmoid",
    "softplus",
    "masked_softmax",
    "cosine_similarity",
    "where",
    "dropout_mask",
    "l2_norm",
]


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (the paper's ``∥`` operator)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("concat() needs at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, boundaries, axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack equally-shaped tensors along a new axis."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("stack() needs at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tensors, backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of an embedding table; gradients scatter-add back."""
    return weight.take_rows(np.asarray(indices, dtype=np.int64))


def sparse_matmul(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Multiply a *constant* SciPy sparse matrix by a dense tensor.

    This is the workhorse of the full-graph propagation models (NGCF,
    PinSAGE-style convolutions): ``out = A @ X`` with ``dX = A.T @ dOut``.
    The sparse matrix itself is never differentiated.
    """
    if not sp.issparse(matrix):
        raise TypeError("sparse_matmul expects a scipy.sparse matrix as the left operand")
    matrix = matrix.tocsr()
    out_data = matrix @ dense.data

    def backward(grad: np.ndarray) -> None:
        if dense.requires_grad:
            dense._accumulate(matrix.T @ grad)

    return Tensor._make(np.asarray(out_data), (dense,), backward)


def softplus(tensor: Tensor) -> Tensor:
    """Numerically stable ``log(1 + exp(x))``."""
    x = tensor.data
    out_data = np.logaddexp(0.0, x)

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            sig = np.where(
                x >= 0,
                1.0 / (1.0 + np.exp(-np.clip(x, 0, None))),
                np.exp(np.clip(x, None, 0)) / (1.0 + np.exp(np.clip(x, None, 0))),
            )
            tensor._accumulate(grad * sig)

    return Tensor._make(out_data, (tensor,), backward)


def log_sigmoid(tensor: Tensor) -> Tensor:
    """Numerically stable ``log(sigmoid(x)) = -softplus(-x)``.

    Used by the BPR loss (Eq. 15) so that large score differences do not
    overflow ``exp``.
    """
    return -softplus(-tensor)


def masked_softmax(scores: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax over ``axis`` where ``mask == 0`` entries receive ~zero weight.

    ``mask`` is a constant 0/1 array broadcastable to ``scores``; padded
    neighbour slots use it so attention only distributes over real
    neighbours.  Rows whose mask is entirely zero produce all-zero weights
    rather than NaNs.
    """
    mask = np.asarray(mask, dtype=np.float64)
    very_negative = Tensor((1.0 - mask) * -1e9)
    weights = (scores + very_negative).softmax(axis=axis)
    weights = weights * Tensor(mask)
    # Rows that are fully masked end up all-zero after the multiplication;
    # rows with at least one real entry are re-normalised to sum to one.
    denom = weights.sum(axis=axis, keepdims=True) + 1e-12
    return weights / denom


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-8) -> Tensor:
    """Cosine similarity along ``axis`` — the paper's attention function f(·)."""
    dot = (a * b).sum(axis=axis)
    norm_a = ((a * a).sum(axis=axis) + eps) ** 0.5
    norm_b = ((b * b).sum(axis=axis) + eps) ** 0.5
    return dot / (norm_a * norm_b)


def where(condition: np.ndarray, if_true: Tensor, if_false: Tensor) -> Tensor:
    """Elementwise select with a constant boolean condition."""
    condition = np.asarray(condition, dtype=bool)
    mask = condition.astype(np.float64)
    return if_true * Tensor(mask) + if_false * Tensor(1.0 - mask)


def dropout_mask(shape: tuple[int, ...], rate: float, rng: np.random.Generator) -> np.ndarray:
    """Return an inverted-dropout mask (already scaled by ``1/(1-rate)``)."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if rate == 0.0:
        return np.ones(shape, dtype=np.float64)
    keep = (rng.random(shape) >= rate).astype(np.float64)
    return keep / (1.0 - rate)


def l2_norm(tensors: Sequence[Tensor]) -> Tensor:
    """Sum of squared entries across tensors (the ``‖Θ‖²`` regulariser)."""
    tensors = list(tensors)
    if not tensors:
        return Tensor(0.0)
    total = (tensors[0] * tensors[0]).sum()
    for tensor in tensors[1:]:
        total = total + (tensor * tensor).sum()
    return total
