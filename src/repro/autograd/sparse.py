"""Row-sparse gradients for embedding-style parameters.

A BPR mini-batch touches a few hundred rows of a ``(num_entities, dim)``
embedding table, yet a dense gradient is the full table.  When a tensor has
row-sparse recording enabled (see :meth:`Tensor.enable_sparse_grad`), the
embedding-gather backward stores its contribution as ``(row indices, gradient
rows)`` pairs instead of scattering into a dense array, and the optimisers'
sparse paths update only the touched rows.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["RowSparseGrad"]


class RowSparseGrad:
    """A gradient that is non-zero on a subset of rows of a dense shape.

    Contributions are appended as ``(indices, rows)`` chunks (duplicates
    allowed, accumulation order preserved); :meth:`coalesced` merges them
    into duplicate-free ``(unique_indices, summed_rows)`` form, which is what
    the optimisers and gradient clipping consume.  The coalesced form is
    cached until the next :meth:`append`.
    """

    __slots__ = ("shape", "_index_chunks", "_row_chunks", "_coalesced")

    def __init__(self, shape: tuple[int, ...], indices: np.ndarray, rows: np.ndarray) -> None:
        if not shape:
            raise ValueError("RowSparseGrad needs a non-scalar dense shape")
        self.shape = tuple(int(dim) for dim in shape)
        self._index_chunks: list[np.ndarray] = []
        self._row_chunks: list[np.ndarray] = []
        self._coalesced: tuple[np.ndarray, np.ndarray] | None = None
        self.append(indices, rows)

    def append(self, indices: np.ndarray, rows: np.ndarray) -> None:
        """Record one more sparse contribution (invalidates the cache)."""
        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        rows = np.asarray(rows, dtype=np.float64).reshape((indices.size,) + self.shape[1:])
        self._index_chunks.append(indices)
        self._row_chunks.append(rows)
        self._coalesced = None

    @property
    def nnz(self) -> int:
        """Number of recorded (index, row) pairs before coalescing."""
        return int(sum(chunk.size for chunk in self._index_chunks))

    def coalesced(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(unique_row_indices, summed_rows)``, cached until changed."""
        if self._coalesced is None:
            indices = np.concatenate(self._index_chunks)
            rows = np.concatenate(self._row_chunks)
            unique, inverse = np.unique(indices, return_inverse=True)
            summed = np.zeros((unique.size,) + self.shape[1:], dtype=np.float64)
            if unique.size == indices.size:
                summed[inverse] = rows
            else:
                np.add.at(summed, inverse, rows)
            self._coalesced = (unique, summed)
        return self._coalesced

    def to_dense(self) -> np.ndarray:
        """Materialise the full dense gradient array."""
        dense = np.zeros(self.shape, dtype=np.float64)
        indices, rows = self.coalesced()
        dense[indices] = rows
        return dense

    def apply_(self, func: Callable[[np.ndarray], np.ndarray]) -> None:
        """Replace the (coalesced) gradient rows with ``func(rows)``.

        Used by gradient clipping; the stored chunks collapse to the
        transformed coalesced form.
        """
        indices, rows = self.coalesced()
        rows = np.asarray(func(rows), dtype=np.float64).reshape(rows.shape)
        self._index_chunks = [indices]
        self._row_chunks = [rows]
        self._coalesced = (indices, rows)

    def scale_(self, factor: float) -> None:
        """Multiply every gradient row by ``factor`` in coalesced form."""
        self.apply_(lambda rows: rows * factor)

    def sq_norm(self) -> float:
        """Sum of squared entries of the (coalesced) gradient."""
        _, rows = self.coalesced()
        return float((rows**2).sum())

    def __repr__(self) -> str:
        return f"RowSparseGrad(shape={self.shape}, nnz={self.nnz})"
