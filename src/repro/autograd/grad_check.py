"""Numerical gradient checking.

Every primitive operation in the engine is validated in the test-suite by
comparing its analytic gradient with a central finite-difference estimate.
The helpers here are also exported publicly so model authors can sanity-check
new compositions.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["numerical_gradient", "gradient_check"]


def numerical_gradient(
    func: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    index: int,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Estimate ``d func(inputs) / d inputs[index]`` by central differences.

    ``func`` must return a scalar tensor.  The input is perturbed in place and
    restored afterwards.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for position in range(flat.size):
        original = flat[position]
        flat[position] = original + epsilon
        plus = float(func(inputs).data)
        flat[position] = original - epsilon
        minus = float(func(inputs).data)
        flat[position] = original
        grad_flat[position] = (plus - minus) / (2.0 * epsilon)
    return grad


def gradient_check(
    func: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-4,
    rtol: float = 1e-3,
    epsilon: float = 1e-6,
) -> bool:
    """Compare analytic and numerical gradients for every input tensor.

    Returns ``True`` when all gradients match; raises ``AssertionError`` with
    the worst offender otherwise, which gives pytest a useful failure message.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = func(inputs)
    if output.data.size != 1:
        raise ValueError("gradient_check requires func to return a scalar tensor")
    output.backward()
    for position, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, inputs, position, epsilon=epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch on input {position}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
