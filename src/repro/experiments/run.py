"""Command-line entry point: ``python -m repro.experiments.run <experiment>``.

Examples
--------
List experiments::

    python -m repro.experiments.run --list

Reproduce Table 1 and write JSON results::

    python -m repro.experiments.run table1 --output results/

Reproduce a quick Table 2 on a half-scale dataset::

    python -m repro.experiments.run table2-quick --scale 0.5
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.utils.logging import configure_logging

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run",
        description="Reproduce the tables and figures of the SceneRec paper.",
    )
    parser.add_argument("experiment", nargs="?", choices=sorted(EXPERIMENTS), help="experiment to run")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale factor (default: 1.0)")
    parser.add_argument("--output", type=Path, default=None, help="directory for JSON results")
    parser.add_argument("--quiet", action="store_true", help="suppress progress logging")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list or args.experiment is None:
        for spec in EXPERIMENTS.values():
            print(f"{spec.name:15s} {spec.description}")
        return 0
    if not args.quiet:
        configure_logging()
    spec = get_experiment(args.experiment)
    result = spec.runner(args.scale, args.output)
    print(result.format())  # type: ignore[attr-defined]
    return 0


if __name__ == "__main__":
    sys.exit(main())
