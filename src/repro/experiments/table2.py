"""Experiment: Table 2 — model comparison and ablations (RQ1 + RQ2).

For every dataset and every model (six baselines, three SceneRec ablations
and SceneRec itself) the runner:

1. generates the synthetic dataset,
2. applies the leave-one-out split with 100 sampled negatives,
3. trains the model with the shared BPR trainer,
4. evaluates NDCG@10 and HR@10 on the held-out test instances,

and finally computes the §5.4.1 improvement summary (SceneRec vs. the best
non-SceneRec baseline per dataset, plus the average over datasets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Sequence

from repro.data.configs import dataset_config, list_dataset_names
from repro.data.splits import leave_one_out_split
from repro.data.synthetic import generate_dataset
from repro.evaluation.evaluator import EvaluationResult
from repro.experiments.reporting import format_improvement_summary, format_table2
from repro.models.registry import build_model, list_model_names
from repro.training.config import TrainConfig
from repro.training.trainer import Trainer
from repro.utils.logging import get_logger
from repro.utils.serialization import save_json

__all__ = ["Table2Config", "ModelResult", "Table2Result", "run_table2"]

_LOGGER = get_logger("experiments.table2")

#: models that count as "baselines" when computing the improvement summary
_BASELINE_MODELS = ("BPR-MF", "NCF", "CMN", "PinSAGE", "NGCF", "KGAT")


@dataclass(frozen=True)
class Table2Config:
    """Scope and budget of the Table-2 run.

    The defaults reproduce the full table at the reproduction's reduced scale;
    tests and quick demos shrink ``dataset_scale``, ``epochs`` and the model
    list.
    """

    dataset_names: tuple[str, ...] = tuple(list_dataset_names())
    model_names: tuple[str, ...] = tuple(list_model_names())
    dataset_scale: float = 1.0
    embedding_dim: int = 32
    num_negatives: int = 100
    train: TrainConfig = field(default_factory=lambda: TrainConfig(epochs=15, batch_size=256, eval_every=0))
    k: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.dataset_names:
            raise ValueError("at least one dataset is required")
        if not self.model_names:
            raise ValueError("at least one model is required")
        if self.dataset_scale <= 0:
            raise ValueError(f"dataset_scale must be positive, got {self.dataset_scale}")
        if self.embedding_dim <= 0:
            raise ValueError(f"embedding_dim must be positive, got {self.embedding_dim}")


@dataclass(frozen=True)
class ModelResult:
    """Test metrics (and timing) of one model on one dataset."""

    dataset: str
    model: str
    test: EvaluationResult
    train_seconds: float

    @property
    def ndcg(self) -> float:
        return self.test.ndcg

    @property
    def hit_ratio(self) -> float:
        return self.test.hit_ratio


@dataclass
class Table2Result:
    """All per-model results plus the derived improvement summary."""

    config: Table2Config
    results: list[ModelResult]

    def metrics(self) -> dict[str, dict[str, dict[str, float]]]:
        """``metrics[dataset][model] = {"ndcg": ..., "hr": ...}``."""
        table: dict[str, dict[str, dict[str, float]]] = {}
        for result in self.results:
            table.setdefault(result.dataset, {})[result.model] = {
                "ndcg": result.ndcg,
                "hr": result.hit_ratio,
            }
        return table

    def improvement_summary(self) -> dict[str, dict[str, float]]:
        """SceneRec vs. the best baseline, per dataset (the §5.4.1 numbers)."""
        summary: dict[str, dict[str, float]] = {}
        metrics = self.metrics()
        for dataset, by_model in metrics.items():
            if "SceneRec" not in by_model:
                continue
            baselines = {name: entry for name, entry in by_model.items() if name in _BASELINE_MODELS}
            if not baselines:
                continue
            best_ndcg_name = max(baselines, key=lambda name: baselines[name]["ndcg"])
            best_hr_name = max(baselines, key=lambda name: baselines[name]["hr"])
            best_ndcg = baselines[best_ndcg_name]["ndcg"]
            best_hr = baselines[best_hr_name]["hr"]
            scenerec = by_model["SceneRec"]
            summary[dataset] = {
                "best_baseline": best_ndcg_name,
                "ndcg_improvement": (scenerec["ndcg"] - best_ndcg) / best_ndcg if best_ndcg else float("nan"),
                "hr_improvement": (scenerec["hr"] - best_hr) / best_hr if best_hr else float("nan"),
            }
        return summary

    def format(self, markdown: bool = False) -> str:
        table = format_table2(
            self.metrics(),
            dataset_order=list(self.config.dataset_names),
            model_order=list(self.config.model_names),
            markdown=markdown,
        )
        summary = format_improvement_summary(self.improvement_summary())
        return f"{table}\n\n{summary}" if summary else table

    def to_dict(self) -> dict[str, object]:
        return {
            "metrics": self.metrics(),
            "improvement_summary": self.improvement_summary(),
            "train_seconds": {f"{r.dataset}/{r.model}": r.train_seconds for r in self.results},
        }


def run_table2(config: Table2Config | None = None, output_dir: str | Path | None = None) -> Table2Result:
    """Run the full comparison described by ``config``."""
    config = config or Table2Config()
    results: list[ModelResult] = []
    for dataset_name in config.dataset_names:
        dataset = generate_dataset(dataset_config(dataset_name, scale=config.dataset_scale))
        split = leave_one_out_split(dataset, num_negatives=config.num_negatives, rng=config.seed)
        train_graph = dataset.bipartite_graph(split.train_interactions)
        scene_graph = dataset.scene_graph()
        for model_name in config.model_names:
            model = build_model(
                model_name,
                train_graph,
                scene_graph,
                embedding_dim=config.embedding_dim,
                seed=config.seed,
            )
            trainer = Trainer(model, split, config.train)
            train_started = perf_counter()
            trainer.fit()
            train_seconds = perf_counter() - train_started
            test = trainer.evaluate_test(k=config.k)
            _LOGGER.info("%s / %s: %s (%.1fs)", dataset_name, model_name, test, train_seconds)
            results.append(
                ModelResult(dataset=dataset_name, model=model_name, test=test, train_seconds=train_seconds)
            )
    outcome = Table2Result(config=config, results=results)
    if output_dir is not None:
        save_json(Path(output_dir) / "table2.json", outcome.to_dict())
    return outcome
