"""Experiment: Table 1 — dataset statistics.

Generates the four synthetic datasets and reports, for each, the five
relation rows the paper prints (User-Item, Item-Item, Item-Category,
Category-Category, Scene-Category), side by side with the paper's original
numbers so the scale factor of the substitution is explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.data.configs import PAPER_TABLE1, dataset_config, list_dataset_names
from repro.data.statistics import dataset_statistics, statistics_table
from repro.data.synthetic import generate_dataset
from repro.experiments.reporting import render_table
from repro.utils.serialization import save_json

__all__ = ["Table1Result", "run_table1"]


@dataclass
class Table1Result:
    """Reproduced statistics plus the paper's reference numbers."""

    statistics: dict[str, dict[str, dict[str, int]]]
    paper_reference: dict[str, dict[str, tuple[int, ...]]] = field(default_factory=dict)

    def format(self) -> str:
        """Plain-text rendering: reproduced table, then paper-vs-repro ratios."""
        sections = ["Reproduced dataset statistics (synthetic JD-like data)", "", statistics_table(self.statistics)]
        if self.paper_reference:
            headers = ["Dataset", "Relation", "Paper edges", "Reproduced edges", "Scale"]
            rows: list[list[str]] = []
            for dataset, relations in self.statistics.items():
                reference = self.paper_reference.get(dataset, {})
                for relation, stats in relations.items():
                    if relation not in reference:
                        continue
                    paper_edges = reference[relation][2]
                    repro_edges = stats["num_edges"]
                    scale = repro_edges / paper_edges if paper_edges else float("nan")
                    rows.append([dataset, relation, str(paper_edges), str(repro_edges), f"{scale:.4f}"])
            sections.extend(["", "Paper vs reproduction (edge counts)", "", render_table(headers, rows)])
        return "\n".join(sections)


def run_table1(
    scale: float = 1.0,
    dataset_names: list[str] | None = None,
    output_dir: str | Path | None = None,
) -> Table1Result:
    """Generate every dataset and collect its Table-1 statistics.

    ``scale`` shrinks the named configurations (useful in tests); results are
    optionally persisted as JSON under ``output_dir``.
    """
    names = dataset_names or list_dataset_names()
    statistics: dict[str, dict[str, dict[str, int]]] = {}
    for name in names:
        dataset = generate_dataset(dataset_config(name, scale=scale))
        statistics[name] = dataset_statistics(dataset)
    result = Table1Result(
        statistics=statistics,
        paper_reference={name: PAPER_TABLE1[name] for name in names if name in PAPER_TABLE1},
    )
    if output_dir is not None:
        save_json(Path(output_dir) / "table1.json", {"statistics": statistics})
    return result
