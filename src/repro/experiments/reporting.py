"""Textual rendering of experiment results."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table", "format_table2", "format_improvement_summary"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]], markdown: bool = False) -> str:
    """Render a table as aligned plain text or GitHub-flavoured markdown."""
    headers = [str(cell) for cell in headers]
    rows = [[str(cell) for cell in row] for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells but the header has {len(headers)}")
    widths = [max(len(headers[col]), *(len(row[col]) for row in rows)) if rows else len(headers[col]) for col in range(len(headers))]
    if markdown:
        lines = ["| " + " | ".join(headers[col].ljust(widths[col]) for col in range(len(headers))) + " |"]
        lines.append("|" + "|".join("-" * (widths[col] + 2) for col in range(len(headers))) + "|")
        lines.extend(
            "| " + " | ".join(row[col].ljust(widths[col]) for col in range(len(headers))) + " |" for row in rows
        )
        return "\n".join(lines)
    lines = ["  ".join(headers[col].ljust(widths[col]) for col in range(len(headers)))]
    lines.append("  ".join("-" * widths[col] for col in range(len(headers))))
    lines.extend("  ".join(row[col].ljust(widths[col]) for col in range(len(headers))) for row in rows)
    return "\n".join(lines)


def format_table2(
    metrics: Mapping[str, Mapping[str, Mapping[str, float]]],
    dataset_order: Sequence[str],
    model_order: Sequence[str],
    markdown: bool = False,
) -> str:
    """Format Table-2-style results.

    ``metrics[dataset][model]`` is a mapping with ``"ndcg"`` and ``"hr"``
    entries; the rendered table mirrors the paper's layout (models as rows,
    one NDCG@10 and one HR@10 column per dataset).
    """
    headers = ["Model"]
    for dataset in dataset_order:
        headers.extend([f"{dataset} NDCG@10", f"{dataset} HR@10"])
    rows: list[list[str]] = []
    for model in model_order:
        row = [model]
        for dataset in dataset_order:
            entry = metrics.get(dataset, {}).get(model)
            if entry is None:
                row.extend(["-", "-"])
            else:
                row.extend([f"{entry['ndcg']:.4f}", f"{entry['hr']:.4f}"])
        rows.append(row)
    return render_table(headers, rows, markdown=markdown)


def format_improvement_summary(improvements: Mapping[str, Mapping[str, float]]) -> str:
    """Format per-dataset relative improvements of SceneRec over the best baseline.

    ``improvements[dataset]`` holds ``ndcg_improvement`` / ``hr_improvement``
    as fractions (0.15 = +15%), plus the name of the best baseline.
    """
    lines = []
    for dataset, entry in improvements.items():
        lines.append(
            f"{dataset}: SceneRec vs best baseline ({entry.get('best_baseline', '?')}): "
            f"NDCG@10 {entry['ndcg_improvement']:+.1%}, HR@10 {entry['hr_improvement']:+.1%}"
        )
    if improvements:
        mean_ndcg = sum(entry["ndcg_improvement"] for entry in improvements.values()) / len(improvements)
        mean_hr = sum(entry["hr_improvement"] for entry in improvements.values()) / len(improvements)
        lines.append(f"average: NDCG@10 {mean_ndcg:+.1%}, HR@10 {mean_hr:+.1%}")
    return "\n".join(lines)
