"""Extension experiment: curated vs. automatically mined scenes.

The paper's scene layer is hand-curated and the authors leave "scene mining"
as future work.  This experiment closes that loop: it mines scenes from the
co-view sessions with :mod:`repro.scene_mining`, reports how well they
reconstruct the curated layer, and trains SceneRec on both scene layers (plus
a no-scene ablation) so the value of each layer can be compared end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.data.configs import dataset_config
from repro.data.splits import leave_one_out_split
from repro.data.synthetic import generate_dataset
from repro.evaluation.evaluator import EvaluationResult
from repro.experiments.reporting import render_table
from repro.models.scenerec import SceneRec, SceneRecConfig
from repro.models.scenerec_variants import SceneRecNoScene
from repro.scene_mining import SceneMiningConfig, mine_scenes, replace_scenes, scene_overlap_report
from repro.training.config import TrainConfig
from repro.training.trainer import Trainer
from repro.utils.serialization import save_json

__all__ = ["SceneMiningExperimentConfig", "SceneMiningExperimentResult", "run_scene_mining_experiment"]


@dataclass(frozen=True)
class SceneMiningExperimentConfig:
    """Scope of the curated-vs-mined comparison."""

    dataset_name: str = "electronics"
    dataset_scale: float = 1.0
    embedding_dim: int = 32
    num_negatives: int = 100
    mining: SceneMiningConfig = field(default_factory=lambda: SceneMiningConfig(min_weight=2.0))
    train: TrainConfig = field(default_factory=lambda: TrainConfig(epochs=15, batch_size=256, eval_every=0))
    seed: int = 0


@dataclass
class SceneMiningExperimentResult:
    """Overlap statistics plus end-task metrics for each scene layer."""

    config: SceneMiningExperimentConfig
    overlap: dict[str, float]
    num_mined_scenes: int
    num_curated_scenes: int
    metrics: dict[str, EvaluationResult]

    def format(self) -> str:
        lines = [
            f"Scene mining on {self.config.dataset_name!r}: "
            f"{self.num_mined_scenes} mined vs {self.num_curated_scenes} curated scenes",
            "",
            "Overlap between mined and curated scene layers:",
        ]
        lines.extend(f"  {key}: {value:.3f}" for key, value in self.overlap.items())
        lines.append("")
        rows = [[label, f"{result.ndcg:.4f}", f"{result.hit_ratio:.4f}"] for label, result in self.metrics.items()]
        lines.append(render_table(["Scene layer", "NDCG@10", "HR@10"], rows))
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        return {
            "dataset": self.config.dataset_name,
            "overlap": self.overlap,
            "num_mined_scenes": self.num_mined_scenes,
            "num_curated_scenes": self.num_curated_scenes,
            "metrics": {label: result.to_dict() for label, result in self.metrics.items()},
        }


def _train_scenerec(dataset, config: SceneMiningExperimentConfig, no_scene: bool = False) -> EvaluationResult:
    split = leave_one_out_split(dataset, num_negatives=config.num_negatives, rng=config.seed)
    graph = dataset.bipartite_graph(split.train_interactions)
    scene_graph = dataset.scene_graph()
    model_config = SceneRecConfig(embedding_dim=config.embedding_dim, seed=config.seed)
    model = (
        SceneRecNoScene(graph, scene_graph, model_config)
        if no_scene
        else SceneRec(graph, scene_graph, model_config)
    )
    trainer = Trainer(model, split, config.train)
    trainer.fit()
    return trainer.evaluate_test()


def run_scene_mining_experiment(
    config: SceneMiningExperimentConfig | None = None,
    output_dir: str | Path | None = None,
) -> SceneMiningExperimentResult:
    """Mine scenes, measure their overlap with the curated layer, train on both."""
    config = config or SceneMiningExperimentConfig()
    dataset = generate_dataset(dataset_config(config.dataset_name, scale=config.dataset_scale))

    mined = mine_scenes(dataset.sessions, dataset.item_category, dataset.num_categories, config.mining)
    overlap = scene_overlap_report(mined, dataset.scene_category_edges, dataset.num_categories)
    mined_dataset = replace_scenes(dataset, mined)

    metrics = {
        "curated": _train_scenerec(dataset, config),
        "mined": _train_scenerec(mined_dataset, config),
        "no scenes (ablation)": _train_scenerec(dataset, config, no_scene=True),
    }
    result = SceneMiningExperimentResult(
        config=config,
        overlap=overlap,
        num_mined_scenes=mined.num_scenes,
        num_curated_scenes=dataset.num_scenes,
        metrics=metrics,
    )
    if output_dir is not None:
        save_json(Path(output_dir) / "scene_mining.json", result.to_dict())
    return result
