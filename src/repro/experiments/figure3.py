"""Experiment: Figure 3 — the scene-attention case study (RQ3).

The runner trains SceneRec on one dataset (Electronics by default, as in the
paper), picks users with the longest training histories, and for each runs
the :mod:`~repro.evaluation.case_study` analysis over their held-out test
candidates.  The headline quantity is the Spearman correlation between the
average scene-based attention of a candidate (against the user's history) and
the model's prediction score — the paper's qualitative claim is that the two
agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.data.configs import dataset_config
from repro.data.splits import leave_one_out_split
from repro.data.synthetic import generate_dataset
from repro.evaluation.case_study import CaseStudyReport, run_case_study
from repro.models.scenerec import SceneRec, SceneRecConfig
from repro.training.config import TrainConfig
from repro.training.trainer import Trainer
from repro.utils.serialization import save_json

__all__ = ["Figure3Config", "Figure3Result", "run_figure3"]


@dataclass(frozen=True)
class Figure3Config:
    """Scope of the case-study run."""

    dataset_name: str = "electronics"
    dataset_scale: float = 1.0
    embedding_dim: int = 32
    num_users: int = 5
    num_negatives: int = 100
    train: TrainConfig = field(default_factory=lambda: TrainConfig(epochs=15, batch_size=256, eval_every=0))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users <= 0:
            raise ValueError(f"num_users must be positive, got {self.num_users}")


@dataclass
class Figure3Result:
    """Case-study reports for the selected users."""

    config: Figure3Config
    reports: list[CaseStudyReport]

    def mean_correlation(self) -> float:
        """Average Spearman(attention, prediction) over the studied users."""
        if not self.reports:
            return float("nan")
        return float(np.mean([report.attention_prediction_correlation for report in self.reports]))

    def format(self) -> str:
        sections = [
            f"Figure 3 case study on {self.config.dataset_name!r} "
            f"({len(self.reports)} users, mean Spearman = {self.mean_correlation():+.3f})",
        ]
        sections.extend("\n" + report.format() for report in self.reports)
        return "\n".join(sections)

    def to_dict(self) -> dict[str, object]:
        return {
            "dataset": self.config.dataset_name,
            "mean_correlation": self.mean_correlation(),
            "per_user": [
                {
                    "user": report.user,
                    "correlation": report.attention_prediction_correlation,
                    "candidates": [
                        {
                            "item": insight.item,
                            "category": insight.category,
                            "prediction": insight.prediction_score,
                            "attention": insight.average_attention,
                            "shared_scenes": insight.average_shared_scenes,
                            "positive": insight.is_positive,
                        }
                        for insight in report.candidates
                    ],
                }
                for report in self.reports
            ],
        }


def run_figure3(config: Figure3Config | None = None, output_dir: str | Path | None = None) -> Figure3Result:
    """Train SceneRec and run the case study on the busiest users."""
    config = config or Figure3Config()
    dataset = generate_dataset(dataset_config(config.dataset_name, scale=config.dataset_scale))
    split = leave_one_out_split(dataset, num_negatives=config.num_negatives, rng=config.seed)
    train_graph = dataset.bipartite_graph(split.train_interactions)
    scene_graph = dataset.scene_graph()

    model = SceneRec(train_graph, scene_graph, SceneRecConfig(embedding_dim=config.embedding_dim, seed=config.seed))
    Trainer(model, split, config.train).fit()

    # Pick the users with the longest training histories (the paper picks a
    # user with a rich Electronics history for its illustration).
    history = split.train_user_items()
    test_by_user = {instance.user: instance for instance in split.test}
    eligible = [user for user in np.argsort([-items.size for items in history]) if int(user) in test_by_user]
    selected = [int(user) for user in eligible[: config.num_users]]

    reports: list[CaseStudyReport] = []
    for user in selected:
        instance = test_by_user[user]
        reports.append(
            run_case_study(
                model=model,
                scene_graph=scene_graph,
                user=user,
                history_items=history[user],
                candidate_items=instance.candidates(),
                positive_items={instance.positive_item},
            )
        )
    result = Figure3Result(config=config, reports=reports)
    if output_dir is not None:
        save_json(Path(output_dir) / "figure3.json", result.to_dict())
    return result
