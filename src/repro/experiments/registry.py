"""Name → experiment runner registry used by the CLI and the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.experiments.figure3 import Figure3Config, run_figure3
from repro.experiments.scene_mining_experiment import (
    SceneMiningExperimentConfig,
    run_scene_mining_experiment,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import Table2Config, run_table2
from repro.training.config import TrainConfig

__all__ = ["ExperimentSpec", "EXPERIMENTS", "list_experiments", "get_experiment"]


@dataclass(frozen=True)
class ExperimentSpec:
    """An experiment the CLI can run: id, description and runner."""

    name: str
    description: str
    #: ``runner(scale, output_dir)`` returns an object with a ``format()`` method
    runner: Callable[[float, Path | None], object]


def _run_table1(scale: float, output_dir: Path | None) -> object:
    return run_table1(scale=scale, output_dir=output_dir)


def _run_table2(scale: float, output_dir: Path | None) -> object:
    config = Table2Config(dataset_scale=scale)
    return run_table2(config, output_dir=output_dir)


def _run_table2_quick(scale: float, output_dir: Path | None) -> object:
    """A reduced Table 2: one dataset, fewer epochs — for demos and CI."""
    config = Table2Config(
        dataset_names=("electronics",),
        dataset_scale=min(scale, 0.5),
        train=TrainConfig(epochs=8, batch_size=256, eval_every=0),
    )
    return run_table2(config, output_dir=output_dir)


def _run_figure3(scale: float, output_dir: Path | None) -> object:
    config = Figure3Config(dataset_scale=scale)
    return run_figure3(config, output_dir=output_dir)


def _run_scene_mining(scale: float, output_dir: Path | None) -> object:
    config = SceneMiningExperimentConfig(dataset_scale=scale)
    return run_scene_mining_experiment(config, output_dir=output_dir)


EXPERIMENTS: dict[str, ExperimentSpec] = {
    "table1": ExperimentSpec(
        name="table1",
        description="Dataset statistics for the four synthetic JD-like datasets (paper Table 1).",
        runner=_run_table1,
    ),
    "table2": ExperimentSpec(
        name="table2",
        description="Full model comparison: 6 baselines + 3 ablations + SceneRec on 4 datasets (paper Table 2).",
        runner=_run_table2,
    ),
    "table2-quick": ExperimentSpec(
        name="table2-quick",
        description="Reduced Table 2 (Electronics only, short training) for quick demonstrations.",
        runner=_run_table2_quick,
    ),
    "figure3": ExperimentSpec(
        name="figure3",
        description="Scene-attention case study relating attention scores to predictions (paper Figure 3).",
        runner=_run_figure3,
    ),
    "scene-mining": ExperimentSpec(
        name="scene-mining",
        description="Extension: mine scenes automatically (the paper's future work) and compare curated vs mined layers.",
        runner=_run_scene_mining,
    ),
}


def list_experiments() -> list[str]:
    return list(EXPERIMENTS)


def get_experiment(name: str) -> ExperimentSpec:
    try:
        return EXPERIMENTS[name]
    except KeyError as error:
        raise KeyError(f"unknown experiment {name!r}; known: {list(EXPERIMENTS)}") from error
