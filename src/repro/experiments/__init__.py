"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`~repro.experiments.table1` — dataset statistics (Table 1),
* :mod:`~repro.experiments.table2` — the model comparison (Table 2 and the
  §5.4.1 improvement summary, including the three ablations of RQ2),
* :mod:`~repro.experiments.figure3` — the scene-attention case study (Figure 3),
* :mod:`~repro.experiments.reporting` — plain-text/markdown table rendering,
* :mod:`~repro.experiments.registry` — name → runner mapping used by the CLI
  (``python -m repro.experiments.run <experiment>``).
"""

from repro.experiments.figure3 import Figure3Config, Figure3Result, run_figure3
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.reporting import format_improvement_summary, format_table2, render_table
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import ModelResult, Table2Config, Table2Result, run_table2

__all__ = [
    "EXPERIMENTS",
    "Figure3Config",
    "Figure3Result",
    "ModelResult",
    "Table1Result",
    "Table2Config",
    "Table2Result",
    "format_improvement_summary",
    "format_table2",
    "get_experiment",
    "list_experiments",
    "render_table",
    "run_figure3",
    "run_table1",
    "run_table2",
]
