"""Micro-benchmarks: training / inference throughput of the substrate.

Unlike the table/figure benches (one-shot end-to-end runs), these use
pytest-benchmark's normal calibration to time the hot paths of the library —
one training epoch per model family, one evaluation sweep, one SceneRec
forward pass — so regressions in the NumPy substrate show up as timing
changes rather than accuracy changes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import dataset_config, generate_dataset, leave_one_out_split
from repro.data.batching import BprBatcher
from repro.evaluation import RankingEvaluator
from repro.models import build_model
from repro.optim import RMSProp
from repro.training.losses import bpr_loss


@pytest.fixture(scope="module")
def workload():
    dataset = generate_dataset(dataset_config("electronics", scale=0.4))
    split = leave_one_out_split(dataset, num_negatives=50, rng=0)
    graph = dataset.bipartite_graph(split.train_interactions)
    scene = dataset.scene_graph()
    return dataset, split, graph, scene


def _one_epoch(model, split, num_items):
    batcher = BprBatcher(split.train_interactions, split.train_user_items(), num_items, batch_size=256, rng=0)
    optimizer = RMSProp(model.parameters(), lr=0.01)
    for batch in batcher.epoch():
        optimizer.zero_grad()
        positive, negative = model.bpr_scores(batch.users, batch.positive_items, batch.negative_items)
        loss = bpr_loss(positive, negative)
        loss.backward()
        optimizer.step()
    return float(loss.data)


@pytest.mark.parametrize("model_name", ["BPR-MF", "NGCF", "SceneRec"])
def test_bench_training_epoch(benchmark, workload, model_name):
    """Wall-clock time of one BPR training epoch."""
    dataset, split, graph, scene = workload
    model = build_model(model_name, graph, scene, embedding_dim=32, seed=0)
    loss = benchmark.pedantic(_one_epoch, args=(model, split, dataset.num_items), rounds=3, iterations=1)
    assert np.isfinite(loss)
    benchmark.extra_info["interactions_per_epoch"] = split.num_train


@pytest.mark.parametrize("model_name", ["BPR-MF", "NGCF", "SceneRec"])
def test_bench_evaluation_sweep(benchmark, workload, model_name):
    """Wall-clock time of a full leave-one-out test evaluation."""
    _, split, graph, scene = workload
    model = build_model(model_name, graph, scene, embedding_dim=32, seed=0)
    evaluator = RankingEvaluator(split.test, k=10)
    result = benchmark(evaluator.evaluate, model)
    assert 0.0 <= result.ndcg <= 1.0
    benchmark.extra_info["users"] = result.num_users


def test_bench_scenerec_forward(benchmark, workload):
    """SceneRec forward pass over a batch of 256 (user, item) pairs."""
    _, _, graph, scene = workload
    model = build_model("SceneRec", graph, scene, embedding_dim=32, seed=0)
    rng = np.random.default_rng(0)
    users = rng.integers(0, graph.num_users, size=256)
    items = rng.integers(0, graph.num_items, size=256)
    scores = benchmark(model.score, users, items)
    assert scores.shape == (256,)


def test_bench_dataset_generation_throughput(benchmark):
    """Synthetic generation of the (reduced) electronics dataset."""
    config = dataset_config("electronics", scale=0.4)
    dataset = benchmark(generate_dataset, config)
    assert dataset.num_interactions > 0
