"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's own ablation rows (which are part of the Table-2
bench) and sweep the design knobs of the reproduction:

* **attention vs. uniform averaging** on a second dataset and seed, isolating
  the scene-based attention mechanism (RQ2's -noatt row, re-checked),
* **embedding dimension** sweep for SceneRec,
* **neighbour caps** of the scene-based item aggregation,
* **graph-construction top-k** caps (the paper's 300/100 pruning, scaled).

Each bench trains a reduced configuration so the whole module stays within a
couple of minutes; results land in ``benchmarks/results/ablations.json``.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from benchmarks.conftest import bench_scale
from repro.data import dataset_config, generate_dataset, leave_one_out_split
from repro.models import SceneRec, SceneRecConfig, SceneRecNoAttention
from repro.training import TrainConfig, Trainer
from repro.utils.serialization import to_jsonable

_ABLATION_TRAIN = TrainConfig(epochs=8, batch_size=256, learning_rate=0.01, eval_every=0, seed=0)
_RESULTS: dict[str, object] = {}


def _prepared(dataset_name: str, seed: int = 1):
    dataset = generate_dataset(dataset_config(dataset_name, scale=min(bench_scale(), 0.6)))
    split = leave_one_out_split(dataset, num_negatives=100, rng=seed)
    return dataset, split, dataset.bipartite_graph(split.train_interactions), dataset.scene_graph()


def _train_and_test(model, split):
    trainer = Trainer(model, split, _ABLATION_TRAIN)
    trainer.fit()
    return trainer.evaluate_test()


def test_bench_ablation_attention(benchmark, results_dir):
    """Scene-based attention vs. uniform averaging (isolated re-check of -noatt)."""

    def run():
        _, split, graph, scene = _prepared("baby_toy", seed=2)
        config = SceneRecConfig(embedding_dim=32, seed=1)
        with_attention = _train_and_test(SceneRec(graph, scene, config), split)
        without_attention = _train_and_test(SceneRecNoAttention(graph, scene, config), split)
        return {"with_attention": with_attention.to_dict(), "uniform_average": without_attention.to_dict()}

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS["attention"] = outcome
    benchmark.extra_info.update(to_jsonable(outcome))


@pytest.mark.parametrize("embedding_dim", [8, 16, 32, 64])
def test_bench_ablation_embedding_dim(benchmark, embedding_dim):
    """SceneRec accuracy/runtime as a function of the embedding dimension d."""

    def run():
        _, split, graph, scene = _prepared("electronics")
        model = SceneRec(graph, scene, SceneRecConfig(embedding_dim=embedding_dim, seed=0))
        return _train_and_test(model, split)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS.setdefault("embedding_dim", {})[str(embedding_dim)] = result.to_dict()
    benchmark.extra_info["ndcg@10"] = round(result.ndcg, 4)
    benchmark.extra_info["hr@10"] = round(result.hit_ratio, 4)


@pytest.mark.parametrize("item_item_cap", [2, 8, 30])
def test_bench_ablation_neighbor_cap(benchmark, item_item_cap):
    """Sensitivity to the item-item neighbour cap of the scene-based space."""

    def run():
        _, split, graph, scene = _prepared("electronics")
        config = SceneRecConfig(embedding_dim=32, item_item_cap=item_item_cap, seed=0)
        return _train_and_test(SceneRec(graph, scene, config), split)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS.setdefault("item_item_cap", {})[str(item_item_cap)] = result.to_dict()
    benchmark.extra_info["ndcg@10"] = round(result.ndcg, 4)


@pytest.mark.parametrize("item_top_k", [5, 15, 30])
def test_bench_ablation_graph_construction_cap(benchmark, item_top_k):
    """Sensitivity to the co-view top-k pruning used to build the item layer.

    The paper keeps the top 300 co-view partners per item; the reproduction's
    default is a scaled-down 30.  Too aggressive pruning starves the scene
    space of item-item signal, too little makes the neighbourhood noisy.
    """

    def run():
        base = dataset_config("electronics", scale=min(bench_scale(), 0.6))
        dataset = generate_dataset(replace(base, item_top_k=item_top_k))
        split = leave_one_out_split(dataset, num_negatives=100, rng=1)
        graph = dataset.bipartite_graph(split.train_interactions)
        scene = dataset.scene_graph()
        return _train_and_test(SceneRec(graph, scene, SceneRecConfig(embedding_dim=32, seed=0)), split)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS.setdefault("item_top_k", {})[str(item_top_k)] = result.to_dict()
    benchmark.extra_info["ndcg@10"] = round(result.ndcg, 4)


def test_bench_ablation_report(results_dir):
    """Persist whatever ablation results were collected in this session."""
    (results_dir / "ablations.json").write_text(json.dumps(to_jsonable(_RESULTS), indent=2))
    assert results_dir.joinpath("ablations.json").exists()
