"""The reliability tax, and the cost profile of the degradation ladder.

A reliability layer that slows the happy path down has negative expected
value at serving scale: faults are rare, requests are not.  The layer is
therefore built from constant-time checks — one breaker ``allow()`` (a
lock plus an enum compare), one failpoint emptiness check per seam, and
two monotonic clock reads per deadline-carrying request — and these
benches hold it to that:

* a request carrying a generous (never-shedding) deadline costs ≤ 5% mean
  ``recommend()`` latency over an identical request without one, measured
  A/B-interleaved at catalogue scale with the breaker engaged on both
  sides, and
* with the index hard-failed and the breaker open, the exact full-scan
  fallback still serves every request (degraded, never wrong) — the bench
  reports its latency multiple so regressions in the fallback path are
  visible in CI logs.

Environment knobs:

* ``REPRO_RELIABILITY_BENCH_ITEMS`` — catalogue size (default ``30000``).
* ``REPRO_RELIABILITY_BENCH_OVERHEAD_CEIL`` — asserted deadline-overhead
  ceiling as a fraction (default ``0.05``; CI's smoke run relaxes it for
  shared runners).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.graph.bipartite import UserItemBipartiteGraph
from repro.index import IVFIndex
from repro.models.base import FactorizedRecommender, FactorizedRepresentations
from repro.reliability import FAILPOINTS, CircuitBreaker, Deadline
from repro.serving import RecommendRequest, RecommendationService

NUM_CLUSTERS = 96
EMBEDDING_DIM = 48
CLUSTER_SPREAD = 0.35
NUM_USERS = 256


def reliability_bench_items() -> int:
    return int(os.environ.get("REPRO_RELIABILITY_BENCH_ITEMS", "30000"))


def reliability_bench_overhead_ceil() -> float:
    return float(os.environ.get("REPRO_RELIABILITY_BENCH_OVERHEAD_CEIL", "0.05"))


@pytest.fixture(autouse=True)
def clean_failpoints():
    FAILPOINTS.clear()
    yield
    FAILPOINTS.clear()


class _StaticFactorized(FactorizedRecommender):
    """A frozen factorized model: serving-stack scaffolding for the bench."""

    name = "static-factorized"
    trainable = False

    def __init__(self, users: np.ndarray, items: np.ndarray) -> None:
        super().__init__()
        self._users = users
        self._items = items

    def factorized_representations(self) -> FactorizedRepresentations:
        return FactorizedRepresentations(users=self._users, items=self._items)


@pytest.fixture(scope="module")
def embeddings():
    """Clustered unit-norm item/user embeddings, the shape of a real catalogue."""
    rng = np.random.default_rng(31)
    centres = rng.normal(size=(NUM_CLUSTERS, EMBEDDING_DIM))

    def draw(count: int) -> np.ndarray:
        rows = centres[rng.integers(0, NUM_CLUSTERS, size=count)]
        rows = rows + CLUSTER_SPREAD * rng.normal(size=rows.shape)
        return rows / np.linalg.norm(rows, axis=1, keepdims=True)

    return draw(reliability_bench_items()), draw(NUM_USERS)


def _make_service(items: np.ndarray, users: np.ndarray, **kwargs) -> RecommendationService:
    model = _StaticFactorized(users, items)
    bipartite = UserItemBipartiteGraph(
        num_users=users.shape[0],
        num_items=items.shape[0],
        interactions=[(u, u) for u in range(users.shape[0])],
    )
    return RecommendationService(
        model,
        bipartite,
        index=IVFIndex(nlist=128, nprobe=8, seed=0),
        **kwargs,
    )


@pytest.mark.smoke
def test_reliability_overhead_ceiling(embeddings):
    """Acceptance ceiling: a non-shedding deadline costs ≤ 5% mean latency.

    Both sides of the A/B run the identical service (same index, same
    breaker machinery, same failpoint checks — those are unconditionally
    compiled in); the only difference is the request carrying a deadline
    whose budget is far too generous to ever shed.  The delta is therefore
    exactly what reliability adds per request on the happy path: deadline
    construction plus the ladder's clock reads.  Interleaving makes
    machine-level drift hit both sides equally; the mean is the honest
    statistic for a constant per-request cost.
    (``REPRO_RELIABILITY_BENCH_OVERHEAD_CEIL`` relaxes the ceiling for CI
    smoke runs.)
    """
    items, users = embeddings
    all_users = tuple(range(users.shape[0]))
    plain = RecommendRequest(users=all_users, k=10, exclude_seen=False)
    num_requests = 40

    service = _make_service(items, users)
    service.recommend(plain)  # warm cache + index build outside the timing

    timings: dict[str, list[float]] = {"plain": [], "deadline": []}
    for _ in range(num_requests):
        for label in ("plain", "deadline"):
            if label == "plain":
                request = plain
            else:
                request = RecommendRequest(
                    users=all_users, k=10, exclude_seen=False, deadline=Deadline(3600.0)
                )
            start = time.perf_counter()
            response = service.recommend(request)
            timings[label].append(time.perf_counter() - start)
            assert not response.degraded  # the generous budget never sheds

    plain_seconds = float(np.mean(timings["plain"]))
    deadline_seconds = float(np.mean(timings["deadline"]))
    overhead = deadline_seconds / plain_seconds - 1.0
    ceiling = reliability_bench_overhead_ceil()
    assert overhead < ceiling, (
        f"reliability overhead {overhead:.1%} ≥ {ceiling:.0%} "
        f"({deadline_seconds * 1000:.2f} ms vs {plain_seconds * 1000:.2f} ms per "
        f"request at {items.shape[0]} items)"
    )


@pytest.mark.smoke
def test_breaker_fallback_keeps_serving(embeddings):
    """With the index hard-failed, every request is still answered.

    The first failing request records the breaker trip and falls back; all
    later requests skip the index outright (``breaker_open``) — the bench
    asserts the whole sequence serves degraded-but-complete responses and
    reports the fallback's latency multiple over the ANN happy path (the
    cost of surviving, useful to eyeball in CI logs).
    """
    items, users = embeddings
    service = _make_service(
        items, users, breaker=CircuitBreaker(failure_threshold=1, component="index")
    )
    request = RecommendRequest(users=tuple(range(64)), k=10, exclude_seen=False)
    happy = service.recommend(request)
    assert not happy.degraded
    start = time.perf_counter()
    for _ in range(5):
        service.recommend(request)
    happy_seconds = (time.perf_counter() - start) / 5

    with FAILPOINTS.armed("index.search"):
        first = service.recommend(request)
        assert first.degradation == ("index_error",)
        start = time.perf_counter()
        for _ in range(5):
            degraded = service.recommend(request)
            assert degraded.degradation == ("breaker_open",)
            assert [len(items_) for items_ in degraded.item_lists()] == [
                len(items_) for items_ in happy.item_lists()
            ]
        fallback_seconds = (time.perf_counter() - start) / 5

    stats = service.stats()
    assert stats.breaker_trips == 1
    assert stats.degraded_requests == 6
    # Not an assertion target — the exact full scan is allowed to cost more
    # than ANN retrieval; surfacing the multiple keeps the tradeoff visible.
    print(
        f"\nfallback latency multiple: {fallback_seconds / happy_seconds:.2f}x "
        f"({fallback_seconds * 1000:.2f} ms full scan vs {happy_seconds * 1000:.2f} ms ANN "
        f"at {items.shape[0]} items)"
    )
