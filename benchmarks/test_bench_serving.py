"""Serving throughput: vectorized matrix path vs the seed pairwise loop.

The seed ``TopKRecommender`` answered every top-K request by looping
``(user, item_chunk)`` tiles through the pairwise ``score`` API and fully
sorting the catalogue per user.  The serving layer answers the same requests
from one catalogue matmul (factorized models) plus an ``argpartition``
partial sort.  These benches time both paths on identical workloads so the
speedup is tracked in the BENCH results, and a floor test asserts the matrix
path stays ≥5× faster on the factorized baselines.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import bench_scale
from repro.autograd.tensor import no_grad
from repro.data import dataset_config, generate_dataset, leave_one_out_split
from repro.models import build_model
from repro.serving import RecommendationService, RecommendRequest

TOP_K = 10
#: each user hits the service three times — a repeat-visitor traffic shape
#: that the pairwise loop pays for linearly and the matrix path amortises.
REQUEST_REPEATS = 3


@pytest.fixture(scope="module")
def workload():
    dataset = generate_dataset(dataset_config("electronics", scale=bench_scale()))
    split = leave_one_out_split(dataset, num_negatives=20, rng=0)
    graph = dataset.bipartite_graph(split.train_interactions)
    scene = dataset.scene_graph()
    users = list(range(graph.num_users)) * REQUEST_REPEATS
    return graph, scene, users


def _pairwise_top_k(model, graph, users, k=TOP_K, item_batch=4096):
    """The seed serving algorithm: per-user score tiles + full stable sort."""
    results = {}
    model.eval()
    with no_grad():
        for user in users:
            num_items = graph.num_items
            scores = np.empty(num_items, dtype=np.float64)
            for start in range(0, num_items, item_batch):
                items = np.arange(start, min(start + item_batch, num_items), dtype=np.int64)
                scores[start : start + items.size] = model.score(
                    np.full(items.size, user, dtype=np.int64), items
                )
            ranked = np.argsort(-scores, kind="stable")
            seen = set(graph.user_items(user).tolist())
            results[user] = [int(item) for item in ranked if int(item) not in seen][:k]
    return results


def _matrix_top_k(service, users, k=TOP_K):
    return service.recommend(RecommendRequest(users=tuple(users), k=k))


@pytest.mark.parametrize("model_name", ["BPR-MF", "LightGCN"])
def test_bench_pairwise_topk(benchmark, workload, model_name):
    """Full-catalogue top-K through the seed pairwise loop (the baseline)."""
    graph, scene, users = workload
    model = build_model(model_name, graph, scene, embedding_dim=32, seed=0)
    results = benchmark.pedantic(_pairwise_top_k, args=(model, graph, users), rounds=3, iterations=1)
    assert len(results) == graph.num_users
    benchmark.extra_info["requests"] = len(users)


@pytest.mark.parametrize("model_name", ["BPR-MF", "LightGCN", "SceneRec"])
def test_bench_matrix_topk(benchmark, workload, model_name):
    """The same workload through the serving layer's vectorized path."""
    graph, scene, users = workload
    model = build_model(model_name, graph, scene, embedding_dim=32, seed=0)
    service = RecommendationService(model, graph, scene)
    response = benchmark.pedantic(_matrix_top_k, args=(service, users), rounds=3, iterations=1)
    assert len(response.results) == len(users)
    benchmark.extra_info["requests"] = len(users)


@pytest.mark.parametrize("model_name", ["BPR-MF", "LightGCN"])
def test_matrix_path_speedup_floor(workload, model_name):
    """Acceptance floor: the matrix path is ≥5× the pairwise loop's throughput."""
    graph, scene, users = workload
    model = build_model(model_name, graph, scene, embedding_dim=32, seed=0)
    service = RecommendationService(model, graph, scene)

    def best_of(callable_, repeats=3):
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            callable_()
            timings.append(time.perf_counter() - start)
        return min(timings)

    pairwise_seconds = best_of(lambda: _pairwise_top_k(model, graph, users))
    service.refresh()  # include one cold representation build in the first round
    matrix_seconds = best_of(lambda: _matrix_top_k(service, users))
    speedup = pairwise_seconds / matrix_seconds
    assert speedup >= 5.0, (
        f"{model_name}: matrix path only {speedup:.1f}x faster "
        f"({pairwise_seconds:.3f}s vs {matrix_seconds:.3f}s)"
    )

    # And it is not buying speed with different answers.
    reference = _pairwise_top_k(model, graph, users[: graph.num_users])
    response = _matrix_top_k(service, users[: graph.num_users])
    for user in list(reference)[:10]:
        assert [rec.item for rec in response.for_user(user)] == reference[user]
