"""Benchmark: regenerate Table 2 (the model comparison) and the RQ2 ablations.

One bench per dataset trains all ten Table-2 models (six baselines, three
SceneRec ablations, SceneRec) with the shared BPR trainer and evaluates
NDCG@10 / HR@10 under the leave-one-out protocol.  A final bench aggregates
the per-dataset results into the paper's §5.4.1 improvement summary and
writes ``benchmarks/results/table2.txt`` / ``.json``.

The absolute numbers differ from the paper (synthetic data at ~1/100 scale,
small CPU training budget); the *shape* to look for is:

* SceneRec at or near the top on every dataset,
* the three ablations between the best baseline and the full model,
* scene-blind CF baselines (BPR-MF, NCF) behind the graph-based ones.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.conftest import bench_scale, bench_train_config
from repro.data import list_dataset_names
from repro.experiments import Table2Config, run_table2
from repro.models import list_model_names
from repro.utils.serialization import to_jsonable

#: collected across the per-dataset benches so the summary bench can aggregate
_COLLECTED: dict[str, object] = {}


def _dataset_config(dataset_name: str) -> Table2Config:
    return Table2Config(
        dataset_names=(dataset_name,),
        model_names=tuple(list_model_names()),
        dataset_scale=bench_scale(),
        embedding_dim=32,
        num_negatives=100,
        train=bench_train_config(),
        seed=0,
    )


@pytest.mark.parametrize("dataset_name", list_dataset_names())
def test_bench_table2_dataset(benchmark, dataset_name):
    """Train and evaluate all ten models on one dataset."""
    result = benchmark.pedantic(
        lambda: run_table2(_dataset_config(dataset_name)), rounds=1, iterations=1
    )
    metrics = result.metrics()[dataset_name]
    assert set(metrics) == set(list_model_names())
    for entry in metrics.values():
        assert 0.0 <= entry["ndcg"] <= 1.0
        assert 0.0 <= entry["hr"] <= 1.0
    _COLLECTED[dataset_name] = result
    benchmark.extra_info["ndcg@10"] = {name: round(entry["ndcg"], 4) for name, entry in metrics.items()}
    benchmark.extra_info["hr@10"] = {name: round(entry["hr"], 4) for name, entry in metrics.items()}


def test_bench_table2_summary(benchmark, results_dir):
    """Aggregate the per-dataset runs into the full Table 2 + §5.4.1 summary."""

    def aggregate():
        # Datasets that did not run in this session (e.g. with -k filtering)
        # are recomputed so the summary is always complete.
        results = []
        for dataset_name in list_dataset_names():
            outcome = _COLLECTED.get(dataset_name) or run_table2(_dataset_config(dataset_name))
            results.extend(outcome.results)
        from repro.experiments.table2 import Table2Result

        combined = Table2Result(
            config=Table2Config(
                dataset_names=tuple(list_dataset_names()),
                model_names=tuple(list_model_names()),
                dataset_scale=bench_scale(),
                train=bench_train_config(),
            ),
            results=results,
        )
        return combined

    combined = benchmark.pedantic(aggregate, rounds=1, iterations=1)
    summary = combined.improvement_summary()
    assert set(summary) == set(list_dataset_names())

    (results_dir / "table2.txt").write_text(combined.format())
    (results_dir / "table2.json").write_text(json.dumps(to_jsonable(combined.to_dict()), indent=2))
    benchmark.extra_info["improvement_summary"] = to_jsonable(summary)

    # Shape check (soft): SceneRec should beat the weakest baseline everywhere
    # and be competitive with the best baseline on average.  Hard per-dataset
    # "SceneRec wins everywhere" assertions would make the bench flaky at this
    # scale, so the precise numbers are recorded rather than asserted.
    metrics = combined.metrics()
    for dataset_name, by_model in metrics.items():
        baselines = {m: v for m, v in by_model.items() if m in ("BPR-MF", "NCF", "CMN", "PinSAGE", "NGCF", "KGAT")}
        assert by_model["SceneRec"]["ndcg"] >= min(v["ndcg"] for v in baselines.values()), dataset_name
    mean_improvement = sum(entry["ndcg_improvement"] for entry in summary.values()) / len(summary)
    benchmark.extra_info["mean_ndcg_improvement_vs_best_baseline"] = round(mean_improvement, 4)
