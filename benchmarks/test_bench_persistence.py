"""Snapshot persistence: memory-mapped attach vs rebuilding from vectors.

A serving fleet restarts constantly — deploys, autoscaling, crash recovery —
and every worker that comes up must get a searchable index.  Rebuilding one
in-process is O(catalogue) every time (k-means for IVF, codebook training +
encoding for IVF-PQ); attaching to a published snapshot with
``mmap=True`` is O(1) — open the files, parse the headers, fault pages in
on demand.  These benches time both sides at catalogue scale, and the floor
test asserts the persistence layer's acceptance criterion:

* memory-mapped snapshot loading is ≥ 20× faster than rebuilding the same
  index from the raw vectors (IVF and IVF-PQ, the training-heavy backends;
  exact and LSH are reported for reference), with byte-identical search
  results either way.

Environment knobs:

* ``REPRO_PERSIST_BENCH_ITEMS`` — catalogue size (default ``50000``).
* ``REPRO_PERSIST_BENCH_SPEEDUP_FLOOR`` — asserted load-vs-rebuild speedup
  floor (default ``20.0``; CI's smoke run relaxes it for shared runners).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.index import ExactIndex, IVFIndex, IVFPQIndex, ItemIndex, LSHIndex

NUM_CLUSTERS = 96
EMBEDDING_DIM = 48
NUM_QUERIES = 64
CLUSTER_SPREAD = 0.35


def persist_bench_items() -> int:
    return int(os.environ.get("REPRO_PERSIST_BENCH_ITEMS", "50000"))


def persist_bench_speedup_floor() -> float:
    return float(os.environ.get("REPRO_PERSIST_BENCH_SPEEDUP_FLOOR", "20.0"))


def _make_backends() -> dict[str, ItemIndex]:
    return {
        "exact": ExactIndex(),
        "ivf": IVFIndex(nlist=128, nprobe=8, seed=0),
        "lsh": LSHIndex(num_tables=8, num_bits=12, hamming_radius=1, seed=0),
        "ivfpq": IVFPQIndex(nlist=128, nprobe=8, num_subspaces=8, seed=0),
    }


@pytest.fixture(scope="module")
def embeddings():
    """Clustered unit-norm item/query embeddings, the shape of a real catalogue."""
    rng = np.random.default_rng(17)
    centres = rng.normal(size=(NUM_CLUSTERS, EMBEDDING_DIM))

    def draw(count: int) -> np.ndarray:
        rows = centres[rng.integers(0, NUM_CLUSTERS, size=count)]
        rows = rows + CLUSTER_SPREAD * rng.normal(size=rows.shape)
        return rows / np.linalg.norm(rows, axis=1, keepdims=True)

    return draw(persist_bench_items()), draw(NUM_QUERIES)


def _best_of(callable_, repeats: int = 5) -> float:
    # best-of-N damps scheduler noise on shared machines; the floors are
    # about algorithmic cost, not a single lucky/unlucky run.
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        timings.append(time.perf_counter() - start)
    return min(timings)


@pytest.mark.parametrize("backend", ["exact", "ivf", "lsh", "ivfpq"])
def test_bench_snapshot_save(benchmark, embeddings, backend, tmp_path_factory):
    """Latency of persisting a built index as a crash-safe bundle."""
    items, _ = embeddings
    index = _make_backends()[backend].build(items)
    root = tmp_path_factory.mktemp(f"save-{backend}")
    counter = iter(range(1_000_000))
    benchmark.pedantic(
        lambda: index.save(root / f"snap-{next(counter)}"), rounds=3, iterations=1
    )
    benchmark.extra_info["num_items"] = items.shape[0]


@pytest.mark.parametrize("backend", ["exact", "ivf", "lsh", "ivfpq"])
def test_bench_snapshot_mmap_load(benchmark, embeddings, backend, tmp_path_factory):
    """Latency of the O(1) memory-mapped attach a serving worker pays."""
    items, queries = embeddings
    index = _make_backends()[backend].build(items)
    snap = index.save(tmp_path_factory.mktemp(f"load-{backend}") / "snap")
    loaded = benchmark.pedantic(
        lambda: ItemIndex.load(snap, mmap=True), rounds=3, iterations=1
    )
    benchmark.extra_info["num_items"] = items.shape[0]
    ids, _ = loaded.search(queries[:4], 10)
    assert (ids >= 0).all()


@pytest.mark.smoke
@pytest.mark.parametrize("backend", ["ivf", "ivfpq"])
def test_snapshot_load_speedup_floor(embeddings, backend, tmp_path_factory):
    """Acceptance floor: mmap attach ≥ 20× faster than rebuilding from vectors.

    The loaded index must also answer byte-identically — a fast load of a
    wrong index would be worthless.  (``REPRO_PERSIST_BENCH_SPEEDUP_FLOOR``
    relaxes the floor for CI smoke runs on noisy shared runners.)
    """
    items, queries = embeddings
    index = _make_backends()[backend].build(items)
    snap = index.save(tmp_path_factory.mktemp(f"floor-{backend}") / "snap")

    rebuild_seconds = _best_of(lambda: _make_backends()[backend].build(items), repeats=3)
    load_seconds = _best_of(lambda: ItemIndex.load(snap, mmap=True), repeats=3)
    loaded = ItemIndex.load(snap, mmap=True)
    expected_ids, expected_scores = index.search(queries, 20)
    got_ids, got_scores = loaded.search(queries, 20)
    np.testing.assert_array_equal(got_ids, expected_ids)
    np.testing.assert_array_equal(got_scores, expected_scores)

    speedup = rebuild_seconds / load_seconds
    floor = persist_bench_speedup_floor()
    assert speedup >= floor, (
        f"{backend} mmap load only {speedup:.1f}x faster than a rebuild "
        f"({rebuild_seconds:.3f}s vs {load_seconds:.4f}s at {items.shape[0]} items; "
        f"floor {floor}x)"
    )
