"""Candidate retrieval: ANN backends vs full-catalogue scoring.

Full-catalogue scoring — the pre-index serving path — is one
``(queries, items)`` matmul plus a catalogue-wide top-K per request.  The IVF
backend scans only ``nprobe/nlist`` of the catalogue per query and the LSH
backend only the queries' hash buckets, trading a little recall for a lot of
latency.  These benches measure both sides of that trade on synthetic
clustered embeddings (the regime real item catalogues live in), and a
floor test asserts the subsystem's acceptance criteria:

* IVF and LSH recall@100 ≥ 0.9 against the exact oracle, and
* IVF ``search`` ≥ 3× faster than the exact full scan at 50k+ items.

Environment knobs:

* ``REPRO_INDEX_BENCH_ITEMS`` — catalogue size (default ``50000``).
* ``REPRO_INDEX_BENCH_QUERIES`` — query batch per request (default ``256``).
* ``REPRO_INDEX_BENCH_RECALL_FLOOR`` — asserted recall@100 floor
  (default ``0.9``).
* ``REPRO_INDEX_BENCH_SPEEDUP_FLOOR`` — asserted IVF-vs-exact speedup floor
  (default ``3.0``; CI's smoke run relaxes both floors for shared runners).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.index import ExactIndex, IVFIndex, LSHIndex, recall_at_k

TOP_K = 100
NUM_CLUSTERS = 96
EMBEDDING_DIM = 48
CLUSTER_SPREAD = 0.35


def index_bench_items() -> int:
    return int(os.environ.get("REPRO_INDEX_BENCH_ITEMS", "50000"))


def index_bench_queries() -> int:
    return int(os.environ.get("REPRO_INDEX_BENCH_QUERIES", "256"))


def index_bench_recall_floor() -> float:
    return float(os.environ.get("REPRO_INDEX_BENCH_RECALL_FLOOR", "0.9"))


def index_bench_speedup_floor() -> float:
    return float(os.environ.get("REPRO_INDEX_BENCH_SPEEDUP_FLOOR", "3.0"))


def _make_backends() -> dict[str, object]:
    """The benchmarked configurations; IVF scans 1/16 of the cells per query."""
    return {
        "exact": ExactIndex(),
        "ivf": IVFIndex(nlist=128, nprobe=8, seed=0),
        "lsh": LSHIndex(num_tables=8, num_bits=12, hamming_radius=1, seed=0),
    }


@pytest.fixture(scope="module")
def embeddings():
    """Unit-norm clustered item/query embeddings, the shape of a real catalogue."""
    rng = np.random.default_rng(7)
    centres = rng.normal(size=(NUM_CLUSTERS, EMBEDDING_DIM))
    num_items, num_queries = index_bench_items(), index_bench_queries()
    items = centres[rng.integers(0, NUM_CLUSTERS, size=num_items)]
    items = items + CLUSTER_SPREAD * rng.normal(size=items.shape)
    items /= np.linalg.norm(items, axis=1, keepdims=True)
    queries = centres[rng.integers(0, NUM_CLUSTERS, size=num_queries)]
    queries = queries + CLUSTER_SPREAD * rng.normal(size=queries.shape)
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)
    return items, queries


@pytest.mark.parametrize("backend", ["exact", "ivf", "lsh"])
def test_bench_index_search(benchmark, embeddings, backend):
    """Top-100 search throughput of each backend on one query batch."""
    items, queries = embeddings
    index = _make_backends()[backend].build(items)
    ids, _ = benchmark.pedantic(index.search, args=(queries, TOP_K), rounds=3, iterations=1)
    assert ids.shape == (queries.shape[0], TOP_K)
    benchmark.extra_info["num_items"] = items.shape[0]
    benchmark.extra_info["num_queries"] = queries.shape[0]
    if backend != "exact":
        exact = ExactIndex().build(items)
        benchmark.extra_info["recall_at_100"] = recall_at_k(index, exact, queries, TOP_K)


@pytest.mark.parametrize("backend", ["ivf", "lsh"])
def test_bench_index_build(benchmark, embeddings, backend):
    """Build cost of the approximate backends (what a refresh() pays)."""
    items, _ = embeddings
    index = _make_backends()[backend]
    benchmark.pedantic(index.build, args=(items,), rounds=3, iterations=1)
    assert index.num_items == items.shape[0]


@pytest.mark.smoke
def test_index_recall_and_speedup_floors(embeddings):
    """Acceptance floors: recall@100 ≥ 0.9 for IVF/LSH, IVF ≥ 3× exact search.

    (``REPRO_INDEX_BENCH_RECALL_FLOOR`` / ``REPRO_INDEX_BENCH_SPEEDUP_FLOOR``
    relax the floors for CI smoke runs on noisy shared runners.)
    """
    items, queries = embeddings
    backends = _make_backends()
    exact = backends["exact"].build(items)
    ivf = backends["ivf"].build(items)
    lsh = backends["lsh"].build(items)

    recall_floor = index_bench_recall_floor()
    ivf_recall = recall_at_k(ivf, exact, queries, TOP_K)
    lsh_recall = recall_at_k(lsh, exact, queries, TOP_K)
    assert ivf_recall >= recall_floor, f"IVF recall@{TOP_K} {ivf_recall:.3f} < {recall_floor}"
    assert lsh_recall >= recall_floor, f"LSH recall@{TOP_K} {lsh_recall:.3f} < {recall_floor}"

    def best_of(callable_, repeats=5):
        # best-of-N damps scheduler noise on shared machines; the floor is
        # about algorithmic cost, not a single lucky/unlucky run.
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            callable_()
            timings.append(time.perf_counter() - start)
        return min(timings)

    exact_seconds = best_of(lambda: exact.search(queries, TOP_K))
    ivf_seconds = best_of(lambda: ivf.search(queries, TOP_K))
    speedup = exact_seconds / ivf_seconds
    floor = index_bench_speedup_floor()
    assert speedup >= floor, (
        f"IVF search only {speedup:.1f}x faster than full-catalogue scoring "
        f"({exact_seconds:.3f}s vs {ivf_seconds:.3f}s at {items.shape[0]} items; floor {floor}x)"
    )
