"""Training throughput: the vectorized pipeline vs the seed per-item loop.

The seed trained every model through two pure-Python hot paths: the
``UniformNegativeSampler`` drew one negative at a time inside a Python
``while`` loop, and every optimiser step rewrote the full
``(num_entities, dim)`` embedding tables (plus moment buffers) even when a
batch touched a few hundred rows.  The vectorized pipeline presamples a whole
epoch of negatives with one ``searchsorted`` rejection pass and updates only
the touched rows through the optimisers' sparse path.  These benches time
one BPR epoch through both pipelines on identical workloads, and a floor
test (mirroring the serving benchmark) asserts the vectorized pipeline stays
ahead of the seed loop.

Environment knobs:

* ``REPRO_TRAIN_BENCH_SCALE`` — dataset scale of the training workload
  (default ``12.0``; the speedup grows with catalogue size, so the floor is
  asserted on a serving-sized catalogue rather than the tiny table/figure
  scale).
* ``REPRO_TRAIN_BENCH_FLOOR`` — the asserted epoch-throughput speedup floor
  (default ``3.0``; CI's smoke run relaxes it for noisy shared runners).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.data import dataset_config, generate_dataset, leave_one_out_split
from repro.data.batching import BprBatcher
from repro.models import build_model
from repro.optim import RMSProp
from repro.training.losses import bpr_loss
from repro.utils.rng import new_rng

BATCH_SIZE = 256
EMBEDDING_DIM = 32
LEARNING_RATE = 0.01
L2_COEFFICIENT = 1e-6


def train_bench_scale() -> float:
    return float(os.environ.get("REPRO_TRAIN_BENCH_SCALE", "12.0"))


def train_bench_floor() -> float:
    return float(os.environ.get("REPRO_TRAIN_BENCH_FLOOR", "3.0"))


@pytest.fixture(scope="module")
def workload():
    dataset = generate_dataset(dataset_config("electronics", scale=train_bench_scale()))
    split = leave_one_out_split(dataset, num_negatives=20, rng=0)
    graph = dataset.bipartite_graph(split.train_interactions)
    scene = dataset.scene_graph()
    return dataset, split, graph, scene


class _SeedSampler:
    """The seed negative sampler: one Python rejection loop per pair."""

    def __init__(self, user_positive_items, num_items, rng):
        self.num_items = num_items
        self._positives = [set(int(item) for item in items) for items in user_positive_items]
        self._rng = rng

    def sample(self, user: int) -> int:
        positives = self._positives[user]
        while True:
            item = int(self._rng.integers(0, self.num_items))
            if item not in positives:
                return item

    def sample_for_users(self, users: np.ndarray) -> np.ndarray:
        return np.array([self.sample(int(user)) for user in users], dtype=np.int64)


def _seed_epoch(model, split, num_items):
    """One epoch through the seed pipeline: per-item sampling + dense updates."""
    rng = new_rng(0)
    sampler = _SeedSampler(split.train_user_items(), num_items, rng)
    shuffled = split.train_interactions[rng.permutation(split.num_train)]
    optimizer = RMSProp(model.parameters(), lr=LEARNING_RATE, weight_decay=L2_COEFFICIENT)
    loss = None
    for start in range(0, split.num_train, BATCH_SIZE):
        chunk = shuffled[start : start + BATCH_SIZE]
        negatives = sampler.sample_for_users(chunk[:, 0])
        optimizer.zero_grad()
        positive, negative = model.bpr_scores(chunk[:, 0], chunk[:, 1], negatives)
        loss = bpr_loss(positive, negative)
        loss.backward()
        optimizer.step()
    return float(loss.data)


def _vectorized_epoch(model, split, num_items):
    """One epoch through the vectorized pipeline: presampled negatives + sparse updates."""
    model.enable_sparse_grad()
    batcher = BprBatcher(
        split.train_interactions,
        split.train_user_items(),
        num_items,
        batch_size=BATCH_SIZE,
        rng=0,
    )
    optimizer = RMSProp(
        model.parameters(), lr=LEARNING_RATE, weight_decay=L2_COEFFICIENT, sparse=True
    )
    loss = None
    for batch in batcher.epoch():
        optimizer.zero_grad()
        positive, negative = model.bpr_scores(
            batch.users, batch.positive_items, batch.negative_items
        )
        loss = bpr_loss(positive, negative)
        loss.backward()
        optimizer.step()
    return float(loss.data)


def test_bench_seed_pipeline_epoch(benchmark, workload):
    """One BPR-MF epoch through the seed per-item pipeline (the baseline)."""
    dataset, split, graph, scene = workload
    model = build_model("BPR-MF", graph, scene, embedding_dim=EMBEDDING_DIM, seed=0)
    loss = benchmark.pedantic(_seed_epoch, args=(model, split, dataset.num_items), rounds=2, iterations=1)
    assert np.isfinite(loss)
    benchmark.extra_info["interactions_per_epoch"] = split.num_train


def test_bench_vectorized_pipeline_epoch(benchmark, workload):
    """The same epoch through batched sampling + sparse row-wise updates."""
    dataset, split, graph, scene = workload
    model = build_model("BPR-MF", graph, scene, embedding_dim=EMBEDDING_DIM, seed=0)
    loss = benchmark.pedantic(
        _vectorized_epoch, args=(model, split, dataset.num_items), rounds=2, iterations=1
    )
    assert np.isfinite(loss)
    benchmark.extra_info["interactions_per_epoch"] = split.num_train


@pytest.mark.smoke
def test_training_speedup_floor(workload):
    """Acceptance floor: the vectorized pipeline beats the seed loop ≥3x.

    (``REPRO_TRAIN_BENCH_FLOOR`` relaxes the floor for CI smoke runs on
    noisy shared hardware; the local default asserts the full 3x.)
    """
    dataset, split, graph, scene = workload

    def best_of(callable_, repeats=3):
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            callable_()
            timings.append(time.perf_counter() - start)
        return min(timings)

    seed_model = build_model("BPR-MF", graph, scene, embedding_dim=EMBEDDING_DIM, seed=0)
    vectorized_model = build_model("BPR-MF", graph, scene, embedding_dim=EMBEDDING_DIM, seed=0)
    seed_seconds = best_of(lambda: _seed_epoch(seed_model, split, dataset.num_items))
    vectorized_seconds = best_of(
        lambda: _vectorized_epoch(vectorized_model, split, dataset.num_items)
    )
    speedup = seed_seconds / vectorized_seconds
    floor = train_bench_floor()
    assert speedup >= floor, (
        f"vectorized pipeline only {speedup:.2f}x faster than the seed loop "
        f"({seed_seconds:.3f}s vs {vectorized_seconds:.3f}s, floor {floor:.1f}x)"
    )

    # And it is not buying speed with a different sampling distribution: both
    # pipelines draw negatives uniformly from each user's non-positive items.
    per_user = split.train_user_items()
    batcher = BprBatcher(
        split.train_interactions, per_user, dataset.num_items, batch_size=BATCH_SIZE, rng=0
    )
    for batch in batcher.epoch():
        for user, negative in zip(batch.users[:64], batch.negative_items[:64]):
            assert negative not in per_user[int(user)]
        break
