"""Benchmark: regenerate Figure 3 (the scene-attention case study).

Trains SceneRec on the Electronics dataset and, for the users with the
longest histories, relates each candidate item's average scene-based
attention (against the user's history) to the model's prediction score.  The
paper's qualitative claim corresponds to a positive Spearman correlation,
which is recorded in ``benchmarks/results/figure3.txt`` / ``.json``.
"""

from __future__ import annotations

from benchmarks.conftest import bench_scale, bench_train_config
from repro.experiments import Figure3Config, run_figure3


def test_bench_figure3_case_study(benchmark, results_dir):
    config = Figure3Config(
        dataset_name="electronics",
        dataset_scale=bench_scale(),
        embedding_dim=32,
        num_users=5,
        num_negatives=100,
        train=bench_train_config(),
        seed=0,
    )
    result = benchmark.pedantic(
        lambda: run_figure3(config, output_dir=results_dir), rounds=1, iterations=1
    )
    assert len(result.reports) == config.num_users
    correlation = result.mean_correlation()
    assert -1.0 <= correlation <= 1.0
    (results_dir / "figure3.txt").write_text(result.format())
    benchmark.extra_info["mean_spearman_attention_vs_prediction"] = round(correlation, 4)
    benchmark.extra_info["per_user_correlation"] = [
        round(report.attention_prediction_correlation, 4) for report in result.reports
    ]
    # The paper's Figure 3 shows attention agreeing with predictions; at this
    # scale the correlation should at least not be strongly negative.
    assert correlation > -0.5
