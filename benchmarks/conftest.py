"""Shared configuration of the benchmark suite.

The benchmarks regenerate every table and figure of the paper at the
reproduction's (reduced) scale.  Heavy end-to-end benches run exactly once
per session (``benchmark.pedantic`` with one round); the throughput benches
use pytest-benchmark's normal calibration.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — dataset scale factor (default ``1.0``); set e.g.
  ``0.3`` for a quick smoke run of the whole suite.
* ``REPRO_BENCH_EPOCHS`` — training epochs per model (default ``15``).

Results (formatted tables + JSON) are written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.training import TrainConfig

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_epochs() -> int:
    return int(os.environ.get("REPRO_BENCH_EPOCHS", "15"))


def bench_train_config() -> TrainConfig:
    return TrainConfig(epochs=bench_epochs(), batch_size=256, learning_rate=0.01, eval_every=0, seed=0)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
