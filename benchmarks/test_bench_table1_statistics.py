"""Benchmark: regenerate Table 1 (dataset statistics).

For each of the four named datasets the bench measures the full pipeline —
synthetic generation, graph construction and statistics extraction — and
records the five relation rows the paper prints.  The formatted table
(reproduction vs. paper) is written to ``benchmarks/results/table1.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale
from repro.data import dataset_config, dataset_statistics, generate_dataset, list_dataset_names
from repro.experiments import run_table1


@pytest.mark.parametrize("dataset_name", list_dataset_names())
def test_bench_dataset_generation(benchmark, dataset_name):
    """Time the generation + statistics pipeline for one dataset."""
    config = dataset_config(dataset_name, scale=bench_scale())

    def pipeline():
        dataset = generate_dataset(config)
        return dataset_statistics(dataset)

    stats = benchmark(pipeline)
    # Sanity: every Table-1 relation is present and non-trivial.
    assert stats["user_item"]["num_edges"] > 0
    assert stats["item_item"]["num_edges"] > 0
    assert stats["scene_category"]["num_edges"] >= stats["scene_category"]["num_a"]
    benchmark.extra_info.update(
        {relation: row["num_edges"] for relation, row in stats.items()}
    )


def test_bench_table1_full(benchmark, results_dir):
    """Regenerate the complete Table 1 and persist the paper-vs-repro report."""
    result = benchmark.pedantic(
        lambda: run_table1(scale=bench_scale(), output_dir=results_dir), rounds=1, iterations=1
    )
    assert set(result.statistics) == set(list_dataset_names())
    (results_dir / "table1.txt").write_text(result.format())
    benchmark.extra_info["datasets"] = len(result.statistics)
