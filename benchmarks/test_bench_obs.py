"""The observability tax, and a scrape-compatibility check of the exposition.

Instrumentation that distorts the numbers it reports is worse than none:
the whole :mod:`repro.obs` design (no-op null objects when disabled,
``enabled`` flags gating every clock read, lock-free counter bumps on the
hot path) exists so that metrics can stay on in production serving.  These
benches hold the layer to that claim:

* a fully instrumented service (metrics + tracing, ``obs=True``) adds
  ≤ 5% mean ``recommend()`` latency over an identical service wired to the
  null registry, measured A/B-interleaved at catalogue scale, and
* ``render_prometheus()`` output parses back line by line — ``# TYPE``
  declarations, sample lines, cumulative (monotone) histogram buckets,
  ``+Inf`` == ``_count`` == the sum implied by ``to_dict()`` — i.e. a real
  scraper would accept the page.  The rendered page is written to
  ``benchmarks/results/obs_prometheus.txt`` (uploaded as a CI artifact).

Environment knobs:

* ``REPRO_OBS_BENCH_ITEMS`` — catalogue size (default ``30000``).
* ``REPRO_OBS_BENCH_OVERHEAD_CEIL`` — asserted instrumentation-overhead
  ceiling as a fraction (default ``0.05``; CI's smoke run relaxes it for
  shared runners).
"""

from __future__ import annotations

import os
import re
import time

import numpy as np
import pytest

from repro.graph.bipartite import UserItemBipartiteGraph
from repro.index import IVFIndex
from repro.models.base import FactorizedRecommender, FactorizedRepresentations
from repro.serving import RecommendRequest, RecommendationService

NUM_CLUSTERS = 96
EMBEDDING_DIM = 48
CLUSTER_SPREAD = 0.35
NUM_USERS = 256


def obs_bench_items() -> int:
    return int(os.environ.get("REPRO_OBS_BENCH_ITEMS", "30000"))


def obs_bench_overhead_ceil() -> float:
    return float(os.environ.get("REPRO_OBS_BENCH_OVERHEAD_CEIL", "0.05"))


class _StaticFactorized(FactorizedRecommender):
    """A frozen factorized model: serving-stack scaffolding for the bench."""

    name = "static-factorized"
    trainable = False

    def __init__(self, users: np.ndarray, items: np.ndarray) -> None:
        super().__init__()
        self._users = users
        self._items = items

    def factorized_representations(self) -> FactorizedRepresentations:
        return FactorizedRepresentations(users=self._users, items=self._items)


@pytest.fixture(scope="module")
def embeddings():
    """Clustered unit-norm item/user embeddings, the shape of a real catalogue."""
    rng = np.random.default_rng(29)
    centres = rng.normal(size=(NUM_CLUSTERS, EMBEDDING_DIM))

    def draw(count: int) -> np.ndarray:
        rows = centres[rng.integers(0, NUM_CLUSTERS, size=count)]
        rows = rows + CLUSTER_SPREAD * rng.normal(size=rows.shape)
        return rows / np.linalg.norm(rows, axis=1, keepdims=True)

    return draw(obs_bench_items()), draw(NUM_USERS)


def _make_service(
    items: np.ndarray, users: np.ndarray, *, obs, snapshots=None
) -> RecommendationService:
    model = _StaticFactorized(users, items)
    bipartite = UserItemBipartiteGraph(
        num_users=users.shape[0],
        num_items=items.shape[0],
        interactions=[(u, u) for u in range(users.shape[0])],
    )
    return RecommendationService(
        model,
        bipartite,
        index=IVFIndex(nlist=128, nprobe=8, seed=0),
        snapshots=snapshots,
        obs=obs,
    )


@pytest.mark.smoke
def test_obs_overhead_ceiling(embeddings):
    """Acceptance ceiling: full instrumentation costs ≤ 5% mean latency.

    Mean over many interleaved requests rather than best-of: the
    instrumentation cost is per-request and constant (a handful of
    ``perf_counter`` reads and counter bumps), so the mean is the honest
    statistic, and interleaving makes machine-level drift (frequency
    scaling, noisy neighbours) hit both sides equally.
    (``REPRO_OBS_BENCH_OVERHEAD_CEIL`` relaxes the ceiling for CI smoke
    runs.)
    """
    items, users = embeddings
    request = RecommendRequest(users=tuple(range(users.shape[0])), k=10, exclude_seen=False)
    num_requests = 40

    baseline = _make_service(items, users, obs=None)
    instrumented = _make_service(items, users, obs=True)
    baseline.recommend(request)  # warm caches + indexes outside the timing
    instrumented.recommend(request)

    timings: dict[str, list[float]] = {"baseline": [], "instrumented": []}
    for _ in range(num_requests):
        for label, service in (("baseline", baseline), ("instrumented", instrumented)):
            start = time.perf_counter()
            service.recommend(request)
            timings[label].append(time.perf_counter() - start)

    baseline_seconds = float(np.mean(timings["baseline"]))
    instrumented_seconds = float(np.mean(timings["instrumented"]))
    registry = instrumented.obs.registry
    assert registry.counter("repro_serving_requests_total").value == num_requests + 1
    assert registry.histogram("repro_serving_request_seconds").count == num_requests + 1
    assert instrumented.obs.tracer.last_trace() is not None

    overhead = instrumented_seconds / baseline_seconds - 1.0
    ceiling = obs_bench_overhead_ceil()
    assert overhead < ceiling, (
        f"instrumentation overhead {overhead:.1%} ≥ {ceiling:.0%} "
        f"({instrumented_seconds * 1000:.2f} ms vs {baseline_seconds * 1000:.2f} ms per "
        f"request at {items.shape[0]} items)"
    )


# One exposition line: `name{labels} value` with the labels block optional.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[0-9.eE+-]+|\+Inf|NaN)$"
)


def _parse_exposition(text: str):
    """Parse Prometheus text back into types + samples, or fail the test."""
    types: dict[str, str] = {}
    samples: list[tuple[str, str, float]] = []
    for line in text.splitlines():
        if not line or line.startswith("# HELP"):
            continue
        if line.startswith("# TYPE"):
            _, _, name, kind = line.split(" ")
            assert kind in {"counter", "gauge", "histogram"}, line
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
        else:
            match = _SAMPLE_RE.match(line)
            assert match is not None, f"unparseable exposition line: {line!r}"
            value = float(match["value"].replace("+Inf", "inf"))
            samples.append((match["name"], match["labels"] or "", value))
    return types, samples


@pytest.mark.smoke
def test_prometheus_render_parses_back(embeddings, results_dir, tmp_path):
    """Scrape compatibility: the rendered page obeys the text-format rules.

    A service is driven through its whole observable surface (serving,
    index mutation + maintenance, snapshot publish/load) and the rendered
    page is then re-parsed: every line must match the exposition grammar,
    every sample's metric must carry exactly one ``# TYPE``, and every
    histogram must satisfy the cumulative-bucket invariants.  The page is
    saved under ``benchmarks/results/`` for the CI artifact upload.
    """
    items, users = embeddings
    service = _make_service(items, users, obs=True, snapshots=tmp_path / "snaps")
    request = RecommendRequest(users=tuple(range(8)), k=10, exclude_seen=False)
    for _ in range(5):
        service.recommend(request)
    rng = np.random.default_rng(3)
    ids = rng.choice(items.shape[0], size=64, replace=False)
    service.refresh_items(ids, items[ids] + 0.01)
    service.maintain(force=True)
    service.publish_snapshot()
    service.load_snapshot()

    text = service.obs.registry.render_prometheus()
    (results_dir / "obs_prometheus.txt").write_text(text)
    types, samples = _parse_exposition(text)

    # Every sample belongs to a declared family (histograms expose
    # _bucket/_sum/_count under the family name).
    suffix = re.compile(r"_(bucket|sum|count)$")
    for name, _, _ in samples:
        family = suffix.sub("", name) if suffix.sub("", name) in types else name
        assert family in types, f"sample {name} has no # TYPE declaration"

    expected = {
        "repro_serving_requests_total": "counter",
        "repro_serving_request_seconds": "histogram",
        "repro_serving_stage_seconds": "histogram",
        "repro_index_queries_total": "counter",
        "repro_index_probes_total": "counter",
        "repro_index_upsert_seconds": "histogram",
        "repro_index_recluster_seconds": "histogram",
        "repro_serving_last_maintain_seconds": "gauge",
        "repro_snapshot_publish_seconds": "histogram",
        "repro_snapshot_publish_bytes_total": "counter",
        "repro_snapshot_load_seconds": "histogram",
    }
    for name, kind in expected.items():
        assert types.get(name) == kind, f"{name}: {types.get(name)} != {kind}"

    # Histogram invariants: buckets cumulative and monotone, +Inf == _count,
    # and the exposition agrees with the structured to_dict() view.
    by_series: dict[tuple[str, str], float] = {(n, l): v for n, l, v in samples}
    histogram_series = {
        (name[: -len("_count")], labels)
        for name, labels, _ in samples
        if name.endswith("_count") and types.get(name[: -len("_count")]) == "histogram"
    }
    assert histogram_series
    for family, labels in histogram_series:
        buckets = sorted(
            (
                (float(re.search(r'le="([^"]+)"', l).group(1).replace("+Inf", "inf")), v)
                for n, l, v in samples
                if n == f"{family}_bucket" and re.sub(r'le="[^"]+",?', "", l).strip(",") == labels
            ),
        )
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), f"{family}{{{labels}}} buckets not cumulative"
        assert buckets[-1][0] == float("inf")
        assert counts[-1] == by_series[(f"{family}_count", labels)]
        assert by_series[(f"{family}_sum", labels)] >= 0.0

    requests_served = by_series[("repro_serving_requests_total", "")]
    assert requests_served == 5
    snapshot = service.obs.registry.to_dict()
    assert snapshot["repro_serving_requests_total"][""]["value"] == requests_served
