"""Online index maintenance vs full rebuilds, and the recall-monitor tax.

A catalogue serving heavy traffic churns continuously — new items, price
and metadata updates, retirements.  Rebuilding an ANN index per change is
O(catalogue) every time (k-means for IVF, full re-hashing for LSH); the
incremental ``upsert``/``delete`` paths added in PR 4 touch only the
changed rows plus an O(table) splice.  These benches time both sides at
catalogue scale, and two floor tests assert the subsystem's acceptance
criteria:

* upserting a ~1% batch is ≥ 5× faster than the full rebuild it replaces
  (IVF and LSH; the exact backend is reported for reference), and
* a :class:`~repro.index.RecallMonitor` sampling 10% of requests adds
  < 10% mean serving latency on the ANN path.

Environment knobs:

* ``REPRO_INCR_BENCH_ITEMS`` — catalogue size (default ``50000``).
* ``REPRO_INCR_BENCH_BATCH`` — upsert batch size (default ``500``, ~1%).
* ``REPRO_INCR_BENCH_SPEEDUP_FLOOR`` — asserted upsert-vs-rebuild speedup
  floor (default ``5.0``).
* ``REPRO_MONITOR_BENCH_OVERHEAD_CEIL`` — asserted monitoring overhead
  ceiling as a fraction (default ``0.10``; CI's smoke run relaxes both
  bounds for shared runners).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.graph.bipartite import UserItemBipartiteGraph
from repro.index import ExactIndex, IVFIndex, LSHIndex, RecallMonitor
from repro.models.base import FactorizedRecommender, FactorizedRepresentations
from repro.serving import RecommendRequest, RecommendationService

NUM_CLUSTERS = 96
EMBEDDING_DIM = 48
CLUSTER_SPREAD = 0.35
NUM_USERS = 256


def incr_bench_items() -> int:
    return int(os.environ.get("REPRO_INCR_BENCH_ITEMS", "50000"))


def incr_bench_batch() -> int:
    return int(os.environ.get("REPRO_INCR_BENCH_BATCH", "500"))


def incr_bench_speedup_floor() -> float:
    return float(os.environ.get("REPRO_INCR_BENCH_SPEEDUP_FLOOR", "5.0"))


def monitor_bench_overhead_ceil() -> float:
    return float(os.environ.get("REPRO_MONITOR_BENCH_OVERHEAD_CEIL", "0.10"))


def _make_backends() -> dict[str, object]:
    """Benchmarked configurations; IVF's threshold re-cluster is pushed out
    of the way (``rebuild_threshold=1.0``) so the timings isolate the pure
    upsert path rather than occasionally folding a re-cluster in."""
    return {
        "exact": ExactIndex(),
        "ivf": IVFIndex(nlist=128, nprobe=8, rebuild_threshold=1.0, seed=0),
        "lsh": LSHIndex(num_tables=8, num_bits=12, hamming_radius=1, seed=0),
    }


@pytest.fixture(scope="module")
def embeddings():
    """Clustered unit-norm item/user embeddings, the shape of a real catalogue."""
    rng = np.random.default_rng(13)
    centres = rng.normal(size=(NUM_CLUSTERS, EMBEDDING_DIM))

    def draw(count: int) -> np.ndarray:
        rows = centres[rng.integers(0, NUM_CLUSTERS, size=count)]
        rows = rows + CLUSTER_SPREAD * rng.normal(size=rows.shape)
        return rows / np.linalg.norm(rows, axis=1, keepdims=True)

    items = draw(incr_bench_items())
    users = draw(NUM_USERS)
    batch_rows = draw(incr_bench_batch())
    return items, users, batch_rows


def _best_of(callable_, repeats: int = 5) -> float:
    # best-of-N damps scheduler noise on shared machines; the floors are
    # about algorithmic cost, not a single lucky/unlucky run.
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        timings.append(time.perf_counter() - start)
    return min(timings)


@pytest.mark.parametrize("backend", ["exact", "ivf", "lsh"])
def test_bench_incremental_upsert(benchmark, embeddings, backend):
    """Latency of one ~1% upsert batch against a built index."""
    items, _, batch_rows = embeddings
    index = _make_backends()[backend].build(items)
    rng = np.random.default_rng(0)
    ids = rng.choice(items.shape[0], size=batch_rows.shape[0], replace=False)
    benchmark.pedantic(index.upsert, args=(ids, batch_rows), rounds=3, iterations=1)
    benchmark.extra_info["num_items"] = items.shape[0]
    benchmark.extra_info["batch"] = batch_rows.shape[0]
    assert index.num_active == items.shape[0]


@pytest.mark.parametrize("backend", ["ivf", "lsh"])
def test_bench_incremental_delete(benchmark, embeddings, backend):
    """Latency of retiring a ~1% batch (tombstones / table splices)."""
    items, _, batch_rows = embeddings
    index = _make_backends()[backend].build(items)
    rng = np.random.default_rng(1)
    victims = iter(
        rng.choice(items.shape[0], size=(5, batch_rows.shape[0]), replace=False)
    )
    benchmark.pedantic(lambda: index.delete(next(victims)), rounds=3, iterations=1)
    assert index.num_active == items.shape[0] - 3 * batch_rows.shape[0]


@pytest.mark.smoke
@pytest.mark.parametrize("backend", ["ivf", "lsh"])
def test_incremental_upsert_speedup_floor(embeddings, backend):
    """Acceptance floor: a ~1% upsert ≥ 5× faster than the full rebuild.

    (``REPRO_INCR_BENCH_SPEEDUP_FLOOR`` relaxes the floor for CI smoke runs
    on noisy shared runners.)
    """
    items, _, batch_rows = embeddings
    index = _make_backends()[backend].build(items)
    rng = np.random.default_rng(2)
    ids = rng.choice(items.shape[0], size=batch_rows.shape[0], replace=False)

    rebuild_seconds = _best_of(lambda: index.build(items))
    upsert_seconds = _best_of(lambda: index.upsert(ids, batch_rows))
    speedup = rebuild_seconds / upsert_seconds
    floor = incr_bench_speedup_floor()
    assert speedup >= floor, (
        f"{backend} upsert of {batch_rows.shape[0]} rows only {speedup:.1f}x faster than a "
        f"full rebuild ({rebuild_seconds:.3f}s vs {upsert_seconds:.3f}s at "
        f"{items.shape[0]} items; floor {floor}x)"
    )


class _StaticFactorized(FactorizedRecommender):
    """A frozen factorized model: serving-stack scaffolding for the bench."""

    name = "static-factorized"
    trainable = False

    def __init__(self, users: np.ndarray, items: np.ndarray) -> None:
        super().__init__()
        self._users = users
        self._items = items

    def factorized_representations(self) -> FactorizedRepresentations:
        return FactorizedRepresentations(users=self._users, items=self._items)


@pytest.mark.smoke
def test_monitor_overhead_ceiling(embeddings):
    """Acceptance ceiling: 10% shadow sampling costs < 10% mean latency.

    Mean over many requests (not best-of) because the monitor's cost *is*
    amortized: most requests pay only a Bernoulli draw, sampled ones pay one
    small exact matmul.  (``REPRO_MONITOR_BENCH_OVERHEAD_CEIL`` relaxes the
    ceiling for CI smoke runs.)
    """
    items, users, _ = embeddings
    model = _StaticFactorized(users, items)
    bipartite = UserItemBipartiteGraph(
        num_users=users.shape[0],
        num_items=items.shape[0],
        interactions=[(u, u) for u in range(users.shape[0])],
    )
    request = RecommendRequest(users=tuple(range(users.shape[0])), k=10, exclude_seen=False)
    num_requests = 40

    def make_service(monitor: RecallMonitor | None) -> RecommendationService:
        service = RecommendationService(
            model,
            bipartite,
            index=IVFIndex(nlist=128, nprobe=8, seed=0),
            monitor=monitor,
        )
        service.recommend(request)  # warm cache + index outside the timing
        return service

    baseline = make_service(None)
    monitored = make_service(
        RecallMonitor(sample_rate=0.1, window=256, max_users_per_request=8, seed=0)
    )
    # Interleave the two measurement streams so slow machine-level drift
    # (frequency scaling, noisy neighbours) hits both sides equally.
    timings: dict[str, list[float]] = {"baseline": [], "monitored": []}
    for _ in range(num_requests):
        for label, service in (("baseline", baseline), ("monitored", monitored)):
            start = time.perf_counter()
            service.recommend(request)
            timings[label].append(time.perf_counter() - start)
    baseline_seconds = float(np.mean(timings["baseline"]))
    monitored_seconds = float(np.mean(timings["monitored"]))
    stats = monitored.stats()
    assert stats.monitor.sampled_requests > 0, "the 10% sampler never fired"
    assert stats.monitor.recall_at_k is not None
    overhead = monitored_seconds / baseline_seconds - 1.0
    ceiling = monitor_bench_overhead_ceil()
    assert overhead < ceiling, (
        f"monitoring overhead {overhead:.1%} ≥ {ceiling:.0%} "
        f"({monitored_seconds * 1000:.2f} ms vs {baseline_seconds * 1000:.2f} ms per request; "
        f"{stats.monitor.sampled_requests}/{num_requests + 1} requests sampled)"
    )
