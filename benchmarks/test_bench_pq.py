"""IVF-PQ quantized retrieval vs the full-precision flat IVF scan.

The flat IVF scan drags every probed item's full vector through the memory
hierarchy — ``d × 8`` bytes per item at float64.  The IVF-PQ backend scans
``num_subspaces`` uint8 codes per item instead, looked up through per-query
ADC tables that live in cache, and only the small re-ranked candidate set
ever touches full-precision rows.  These benches measure that trade in the
regime product quantization exists for — **memory-bound catalogues**: wide
embeddings (d=384, e.g. a 3-layer × 128-d concatenated GNN representation)
at 50k items, where the float64 catalogue (~150 MB) is far beyond any LLC
while the PQ codes (~400 KB) never leave it.  The floor test asserts the
subsystem's acceptance criteria:

* scan-path memory ≥ 8× smaller than float64 vector storage (measured:
  ``d × 8 / num_subspaces`` = 384×),
* recall@100 ≥ 0.85 against the exact float64 oracle after quantization +
  refined re-ranking, and
* the ADC scan ≥ 2× faster than the full-precision IVF scan at equal
  ``nprobe`` over the same probe layout (``IVFIndex.scan`` vs
  ``IVFPQIndex.scan``).

End-to-end ``search`` latencies are reported alongside (`extra_info`): with
selection, refine and candidate assembly shared or added on top, IVF-PQ
search runs at parity with flat IVF on these sizes — the quantized win is
the scan stage and the ~48–384× smaller scan working set (i.e. how much
catalogue fits in RAM/cache), not a free end-to-end speedup on a
cache-rich box.

Environment knobs:

* ``REPRO_PQ_BENCH_ITEMS`` — catalogue size (default ``50000``).
* ``REPRO_PQ_BENCH_QUERIES`` — query batch per request (default ``256``).
* ``REPRO_PQ_BENCH_DIM`` — embedding width (default ``384``).
* ``REPRO_PQ_BENCH_RECALL_FLOOR`` — asserted recall@100 floor (default
  ``0.85``).
* ``REPRO_PQ_BENCH_SPEEDUP_FLOOR`` — asserted ADC-vs-flat scan speedup
  floor (default ``2.0``; CI's smoke run relaxes it for shared runners).
* ``REPRO_PQ_BENCH_COMPRESSION_FLOOR`` — asserted scan-memory compression
  floor (default ``8.0``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.index import ExactIndex, IVFIndex, IVFPQIndex, recall_at_k

TOP_K = 100
NUM_CLUSTERS = 96
CLUSTER_SPREAD = 0.35
NLIST = 128
NPROBE = 8
NUM_SUBSPACES = 8
REFINE_FACTOR = 6.0


def pq_bench_items() -> int:
    return int(os.environ.get("REPRO_PQ_BENCH_ITEMS", "50000"))


def pq_bench_queries() -> int:
    return int(os.environ.get("REPRO_PQ_BENCH_QUERIES", "256"))


def pq_bench_dim() -> int:
    return int(os.environ.get("REPRO_PQ_BENCH_DIM", "384"))


def pq_bench_recall_floor() -> float:
    return float(os.environ.get("REPRO_PQ_BENCH_RECALL_FLOOR", "0.85"))


def pq_bench_speedup_floor() -> float:
    return float(os.environ.get("REPRO_PQ_BENCH_SPEEDUP_FLOOR", "2.0"))


def pq_bench_compression_floor() -> float:
    return float(os.environ.get("REPRO_PQ_BENCH_COMPRESSION_FLOOR", "8.0"))


def _make_ivf() -> IVFIndex:
    """The full-precision baseline: float64 storage, flat BLAS scan."""
    return IVFIndex(nlist=NLIST, nprobe=NPROBE, seed=0, dtype="float64")


def _make_ivfpq() -> IVFPQIndex:
    """The quantized backend at the serving dtype (float32 full-precision rows)."""
    return IVFPQIndex(
        nlist=NLIST,
        nprobe=NPROBE,
        num_subspaces=NUM_SUBSPACES,
        refine_factor=REFINE_FACTOR,
        seed=0,
        dtype="float32",
    )


@pytest.fixture(scope="module")
def embeddings():
    """Wide clustered unit-norm embeddings — the memory-bound catalogue shape."""
    rng = np.random.default_rng(7)
    dim = pq_bench_dim()
    centres = rng.normal(size=(NUM_CLUSTERS, dim))
    num_items, num_queries = pq_bench_items(), pq_bench_queries()
    items = centres[rng.integers(0, NUM_CLUSTERS, size=num_items)]
    items = items + CLUSTER_SPREAD * rng.normal(size=items.shape)
    items /= np.linalg.norm(items, axis=1, keepdims=True)
    queries = centres[rng.integers(0, NUM_CLUSTERS, size=num_queries)]
    queries = queries + CLUSTER_SPREAD * rng.normal(size=queries.shape)
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)
    return items, queries


def _best_of(callable_, repeats: int = 5) -> float:
    # best-of-N damps scheduler noise on shared machines; the floors are
    # about algorithmic cost, not a single lucky/unlucky run.
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        timings.append(time.perf_counter() - start)
    return min(timings)


def test_bench_pq_build(benchmark, embeddings):
    """Build cost: coarse k-means + per-subspace codebooks + encode pass."""
    items, _ = embeddings
    index = _make_ivfpq()
    benchmark.pedantic(index.build, args=(items,), rounds=1, iterations=1)
    assert index.num_items == items.shape[0]
    benchmark.extra_info["compression_ratio"] = index.compression_ratio


@pytest.mark.parametrize("backend", ["ivf", "ivfpq"])
def test_bench_pq_search(benchmark, embeddings, backend):
    """Top-100 search throughput: quantized vs full-precision inverted lists."""
    items, queries = embeddings
    index = (_make_ivf() if backend == "ivf" else _make_ivfpq()).build(items)
    ids, _ = benchmark.pedantic(index.search, args=(queries, TOP_K), rounds=3, iterations=1)
    assert ids.shape == (queries.shape[0], TOP_K)
    benchmark.extra_info["num_items"] = items.shape[0]
    benchmark.extra_info["dim"] = items.shape[1]


@pytest.mark.smoke
def test_pq_memory_recall_and_scan_floors(embeddings):
    """Acceptance floors: ≥8× scan memory compression, recall@100 ≥ 0.85,
    ADC scan ≥ 2× faster than the full-precision IVF scan at equal nprobe.

    (``REPRO_PQ_BENCH_{RECALL,SPEEDUP,COMPRESSION}_FLOOR`` relax the floors
    for CI smoke runs on noisy shared runners.)
    """
    items, queries = embeddings
    exact = ExactIndex(dtype="float64").build(items)
    ivf = _make_ivf().build(items)
    ivfpq = _make_ivfpq().build(items)
    queries32 = queries.astype(np.float32)

    compression = ivfpq.compression_ratio
    compression_floor = pq_bench_compression_floor()
    assert compression >= compression_floor, (
        f"scan store only {compression:.1f}x smaller than float64 vectors "
        f"(codes {ivfpq.code_bytes} bytes; floor {compression_floor}x)"
    )

    recall = recall_at_k(ivfpq, exact, queries, TOP_K)
    recall_floor = pq_bench_recall_floor()
    assert recall >= recall_floor, f"IVF-PQ recall@{TOP_K} {recall:.3f} < {recall_floor}"

    # Equal-nprobe scan-stage race over identical probe layouts: the flat
    # scan gathers d×8 bytes per probed item, the ADC scan reads uint8
    # codes through cached per-query tables.
    flat_seconds = _best_of(lambda: ivf.scan(queries))
    adc_seconds = _best_of(lambda: ivfpq.scan(queries32))
    speedup = flat_seconds / adc_seconds
    floor = pq_bench_speedup_floor()
    assert speedup >= floor, (
        f"ADC scan only {speedup:.2f}x faster than the full-precision IVF scan "
        f"({flat_seconds * 1e3:.1f} ms vs {adc_seconds * 1e3:.1f} ms at "
        f"{items.shape[0]} items × {items.shape[1]} dims, nprobe={NPROBE}; floor {floor}x)"
    )
