"""Legacy setup shim.

The environment this reproduction targets is fully offline: ``pip`` cannot
fetch the ``wheel`` package that modern PEP-660 editable installs require, so
``pip install -e .`` falls back to this classic ``setup.py develop`` path.
All project metadata lives in ``pyproject.toml``; this file only exists to
keep editable installs working without network access.
"""

from setuptools import setup

setup()
